package trace

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"bbb/internal/stats"
)

func sampleEvents() []Event {
	return []Event{
		{Cycle: 10, Kind: KindStoreCommit, Core: 0, Addr: 0x1000, Aux: 7},
		{Cycle: 12, Kind: KindBufAlloc, Core: 0, Addr: 0x1000, Aux: 1},
		{Cycle: 20, Kind: KindStoreCommit, Core: 1, Addr: 0x2040, Aux: 9},
		{Cycle: 25, Kind: KindWPQInsert, Core: -1, Addr: 0x2040, Aux: 3},
		{Cycle: 30, Kind: KindBufForcedDrain, Core: 0, Addr: 0x1000, Aux: 0},
		{Cycle: 44, Kind: KindWPQDrain, Core: -1, Addr: 0x2040, Aux: 2},
	}
}

func TestBufferSinkRetainsEverything(t *testing.T) {
	r := NewFull()
	for i := 0; i < 10000; i++ {
		r.Emit(uint64(i), KindClwb, 0, uint64(i), 0)
	}
	if r.Len() != 10000 || r.Emitted != 10000 {
		t.Fatalf("Len=%d Emitted=%d", r.Len(), r.Emitted)
	}
	evs := r.Events()
	if evs[0].Cycle != 0 || evs[9999].Cycle != 9999 {
		t.Fatal("full buffer lost or reordered events")
	}
}

func TestAttachForwardsToAllSinks(t *testing.T) {
	r := New(4) // tiny ring, so retention drops events...
	var full BufferSink
	r.Attach(&full)
	for _, e := range sampleEvents() {
		r.Emit(e.Cycle, e.Kind, int(e.Core), e.Addr, e.Aux)
	}
	if r.Len() != 4 {
		t.Fatalf("ring Len = %d, want 4", r.Len())
	}
	if !reflect.DeepEqual(full.Events(), sampleEvents()) { // ...but attached sinks see all
		t.Fatalf("attached sink missed events: %v", full.Events())
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONL(&buf)
	for _, e := range sampleEvents() {
		s.Write(e)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sampleEvents()) {
		t.Fatalf("round trip mismatch:\n got %v\nwant %v", got, sampleEvents())
	}
}

func TestJSONLDeterministic(t *testing.T) {
	render := func() string {
		var buf bytes.Buffer
		s := NewJSONL(&buf)
		for _, e := range sampleEvents() {
			s.Write(e)
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if render() != render() {
		t.Fatal("JSONL output not byte-identical across runs")
	}
	first := strings.SplitN(render(), "\n", 2)[0]
	want := `{"cycle":10,"kind":"store-commit","core":0,"addr":"0x1000","aux":7}`
	if first != want {
		t.Fatalf("JSONL line = %s, want %s", first, want)
	}
}

func TestParseJSONLRejectsGarbage(t *testing.T) {
	for name, in := range map[string]string{
		"not json":     "hello\n",
		"unknown kind": `{"cycle":1,"kind":"nope","core":0,"addr":"0x0","aux":0}` + "\n",
		"bad addr":     `{"cycle":1,"kind":"clwb","core":0,"addr":"xyz","aux":0}` + "\n",
		"bad core":     `{"cycle":1,"kind":"clwb","core":99999,"addr":"0x0","aux":0}` + "\n",
	} {
		if _, err := ParseJSONL(strings.NewReader(in)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for k := KindNone + 1; k <= KindCrashDrain; k++ {
		got, ok := ParseKind(k.String())
		if !ok || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := ParseKind("bogus"); ok {
		t.Fatal("ParseKind accepted bogus name")
	}
}

// Satellite regression: Emit must not silently truncate core ids that
// overflow Event's int16 field.
func TestEmitRejectsOutOfRangeCore(t *testing.T) {
	r := New(8)
	r.Emit(1, KindClwb, -1, 0, 0)      // machine-wide: fine
	r.Emit(1, KindClwb, MaxCore, 0, 0) // largest representable: fine
	for _, core := range []int{-2, MaxCore + 1, 40000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("core %d: no panic", core)
				}
			}()
			r.Emit(1, KindClwb, core, 0, 0)
		}()
	}
	// The two valid emissions must be attributed exactly.
	evs := r.Events()
	if len(evs) != 2 || evs[0].Core != -1 || evs[1].Core != MaxCore {
		t.Fatalf("events = %v", evs)
	}
}

func TestFilters(t *testing.T) {
	evs := sampleEvents()
	if got := EventsByKind(evs, KindStoreCommit); len(got) != 2 || got[0].Cycle != 10 || got[1].Cycle != 20 {
		t.Fatalf("EventsByKind = %v", got)
	}
	if got := EventsByCore(evs, 0); len(got) != 3 {
		t.Fatalf("EventsByCore(0) = %v", got)
	}
	if got := EventsByCore(evs, -1); len(got) != 2 {
		t.Fatalf("EventsByCore(-1) = %v", got)
	}
	if got := EventsInRange(evs, 12, 25); len(got) != 3 || got[0].Cycle != 12 || got[2].Cycle != 25 {
		t.Fatalf("EventsInRange = %v", got)
	}
	counts := CountKinds(evs)
	if counts[KindStoreCommit] != 2 || counts[KindWPQDrain] != 1 {
		t.Fatalf("CountKinds = %v", counts)
	}
}

func TestWritePerfettoLoadableJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, sampleEvents(), PerfettoMeta{Process: "test"}); err != nil {
		t.Fatal(err)
	}
	// The envelope must be valid JSON with the trace-event shape Perfetto
	// and chrome://tracing load.
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Pid  *int   `json:"pid"`
			Tid  *int   `json:"tid"`
			Name string `json:"name"`
			Ts   uint64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	var meta, instant, counter int
	for _, e := range doc.TraceEvents {
		if e.Pid == nil || e.Tid == nil {
			t.Fatalf("entry missing pid/tid: %+v", e)
		}
		switch e.Ph {
		case "M":
			meta++
		case "i":
			instant++
		case "C":
			counter++
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	// process_name + machine + core 0 + core 1 metadata; every event as an
	// instant; occupancy/forced-drain/WPQ counters.
	if meta != 4 {
		t.Fatalf("meta entries = %d, want 4", meta)
	}
	if instant != len(sampleEvents()) {
		t.Fatalf("instant entries = %d, want %d", instant, len(sampleEvents()))
	}
	// BufAlloc + ForcedDrain occupancy, ForcedDrain cumulative, 2 WPQ.
	if counter != 5 {
		t.Fatalf("counter entries = %d, want 5", counter)
	}
}

func TestWritePerfettoDeterministic(t *testing.T) {
	render := func() string {
		var buf bytes.Buffer
		if err := WritePerfetto(&buf, sampleEvents(), PerfettoMeta{}); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if render() != render() {
		t.Fatal("Perfetto export not byte-identical across runs")
	}
}

func TestProvenanceBBBZeroGap(t *testing.T) {
	m := stats.NewMetrics()
	p := NewProvenance(DurableAtBufAlloc, m)
	// Commit then same-cycle bbPB alloc — the exact ordering the
	// coherence layer produces for BBB.
	p.Write(Event{Cycle: 100, Kind: KindStoreCommit, Core: 0, Addr: 0x40})
	p.Write(Event{Cycle: 100, Kind: KindBufAlloc, Core: 0, Addr: 0x40, Aux: 1})
	p.Write(Event{Cycle: 200, Kind: KindStoreCommit, Core: 0, Addr: 0x40})
	p.Write(Event{Cycle: 200, Kind: KindBufCoalesce, Core: 0, Addr: 0x40, Aux: 1})
	if p.Resolved() != 2 || p.Unresolved() != 0 {
		t.Fatalf("resolved=%d unresolved=%d", p.Resolved(), p.Unresolved())
	}
	h := m.Hist("persist.vis_to_dur_gap")
	if h.Count() != 2 || h.Max() != 0 {
		t.Fatalf("gap histogram: %s", h.Summary())
	}
}

func TestProvenancePMEMGapIsWPQBound(t *testing.T) {
	m := stats.NewMetrics()
	p := NewProvenance(DurableAtWPQ, m)
	p.Write(Event{Cycle: 100, Kind: KindStoreCommit, Core: 0, Addr: 0x40})
	p.Write(Event{Cycle: 130, Kind: KindStoreCommit, Core: 1, Addr: 0x40}) // second store, same line
	p.Write(Event{Cycle: 150, Kind: KindBufAlloc, Core: 0, Addr: 0x40})    // wrong point: ignored
	p.Write(Event{Cycle: 400, Kind: KindWPQInsert, Core: -1, Addr: 0x40, Aux: 1})
	if p.Resolved() != 2 || p.Unresolved() != 0 {
		t.Fatalf("resolved=%d unresolved=%d", p.Resolved(), p.Unresolved())
	}
	h := m.Hist("persist.vis_to_dur_gap")
	if h.Count() != 2 || h.Min() != 270 || h.Max() != 300 {
		t.Fatalf("gap histogram: %s", h.Summary())
	}
}

func TestProvenanceAtCommitAndUnresolved(t *testing.T) {
	m := stats.NewMetrics()
	p := NewProvenance(DurableAtCommit, m)
	p.Write(Event{Cycle: 10, Kind: KindStoreCommit, Core: 0, Addr: 0x40})
	if p.Resolved() != 1 || m.Hist("persist.vis_to_dur_gap").Max() != 0 {
		t.Fatal("at-commit store not resolved with zero gap")
	}

	q := NewProvenance(DurableAtWPQ, m)
	q.Write(Event{Cycle: 10, Kind: KindStoreCommit, Core: 0, Addr: 0x80})
	if q.Unresolved() != 1 {
		t.Fatalf("unresolved = %d, want 1", q.Unresolved())
	}
	// A crash-time battery drain persists the pending line.
	q.Write(Event{Cycle: 500, Kind: KindCrashDrain, Core: -1, Addr: 0x80})
	if q.Unresolved() != 0 || q.Resolved() != 1 {
		t.Fatalf("after crash drain: unresolved=%d resolved=%d", q.Unresolved(), q.Resolved())
	}
}

func TestProvenanceNilMetricsOnlyCounts(t *testing.T) {
	p := NewProvenance(DurableAtBufAlloc, nil)
	p.Write(Event{Cycle: 1, Kind: KindStoreCommit, Core: 0, Addr: 0x40})
	p.Write(Event{Cycle: 1, Kind: KindBufAlloc, Core: 0, Addr: 0x40})
	if p.Resolved() != 1 {
		t.Fatal("nil-metrics provenance lost the count")
	}
}

// The disabled-tracing path is on the simulator hot loop; pin it at zero
// allocations alongside the engine-kernel guarantees.
func TestNilRecorderZeroAlloc(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		r.Emit(123, KindStoreCommit, 3, 0x1000, 7)
	})
	if allocs != 0 {
		t.Fatalf("nil recorder Emit allocates %g allocs/op, want 0", allocs)
	}
}

// The enabled ring path must also be allocation-free in steady state —
// tracing a long run must not churn the GC.
func TestRingEmitZeroAllocSteadyState(t *testing.T) {
	r := New(256)
	allocs := testing.AllocsPerRun(1000, func() {
		r.Emit(123, KindStoreCommit, 3, 0x1000, 7)
	})
	if allocs != 0 {
		t.Fatalf("ring Emit allocates %g allocs/op, want 0", allocs)
	}
}

// BenchmarkTraceOverhead contrasts the enabled ring sink against the
// disabled nil recorder — the number the bench-json trail tracks.
func BenchmarkTraceOverhead(b *testing.B) {
	b.Run("nil", func(b *testing.B) {
		var r *Recorder
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.Emit(uint64(i), KindStoreCommit, 1, 0x1000, 0)
		}
	})
	b.Run("ring", func(b *testing.B) {
		r := New(4096)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.Emit(uint64(i), KindStoreCommit, 1, 0x1000, 0)
		}
	})
}
