// Package palloc is the persistent-memory heap allocator of §III-A: it
// hands out chunks of the persistent physical address range (the paper's
// palloc), so every store a workload makes through one of its pointers is a
// persisting store.
//
// The allocator's metadata is deliberately kept host-side: the paper's
// workloads use persistent allocation as a given, and allocator crash
// consistency is out of scope ("permanent leaks ... are out of the scope of
// this paper", §II-A). The *data* the workloads write is fully simulated.
package palloc

import (
	"fmt"
	"sort"
	"sync"

	"bbb/internal/memory"
)

// Arena allocates from a contiguous persistent address range. It is safe
// for concurrent use by workload goroutines.
type Arena struct {
	mu    sync.Mutex
	base  memory.Addr
	limit memory.Addr
	next  memory.Addr
	// free holds size-bucketed free lists of previously freed chunks.
	free map[uint64][]memory.Addr
	// allocated tracks live chunk sizes for Free validation.
	allocated map[memory.Addr]uint64
}

// New builds an arena over [base, base+size). base must be line-aligned.
func New(base memory.Addr, size uint64) *Arena {
	if base%memory.LineSize != 0 {
		panic(fmt.Sprintf("palloc: base %#x not line-aligned", base))
	}
	return &Arena{
		base:      base,
		limit:     base + memory.Addr(size),
		next:      base,
		free:      make(map[uint64][]memory.Addr),
		allocated: make(map[memory.Addr]uint64),
	}
}

// FromLayout builds an arena over the layout's whole persistent range.
func FromLayout(l memory.Layout) *Arena {
	return New(l.PersistentBase, l.PersistentSize)
}

// roundUp rounds n up to a multiple of the line size: allocations never
// share cache lines, mirroring how persistent allocators pad to avoid
// cross-object flush interference.
func roundUp(n uint64) uint64 {
	if n == 0 {
		n = 1
	}
	return (n + memory.LineSize - 1) &^ (memory.LineSize - 1)
}

// Alloc returns a line-aligned chunk of at least size bytes. It panics when
// the arena is exhausted: workloads size themselves to fit.
func (a *Arena) Alloc(size uint64) memory.Addr {
	a.mu.Lock()
	defer a.mu.Unlock()
	sz := roundUp(size)
	if lst := a.free[sz]; len(lst) > 0 {
		addr := lst[len(lst)-1]
		a.free[sz] = lst[:len(lst)-1]
		a.allocated[addr] = sz
		return addr
	}
	addr := a.next
	if addr+memory.Addr(sz) > a.limit {
		panic(fmt.Sprintf("palloc: arena exhausted (asked %d, %d left)", sz, a.limit-a.next))
	}
	a.next += memory.Addr(sz)
	a.allocated[addr] = sz
	return addr
}

// Free returns a chunk to the arena. Freeing an address that is not a live
// allocation panics — it would indicate workload corruption.
func (a *Arena) Free(addr memory.Addr) {
	a.mu.Lock()
	defer a.mu.Unlock()
	sz, ok := a.allocated[addr]
	if !ok {
		panic(fmt.Sprintf("palloc: Free of non-allocated address %#x", addr))
	}
	delete(a.allocated, addr)
	a.free[sz] = append(a.free[sz], addr)
}

// Live reports the number of live allocations.
func (a *Arena) Live() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.allocated)
}

// Mark returns the arena's current bump pointer: the address the next
// fresh (non-recycled) Alloc will return. Workload compilers use it to
// precompute the deterministic allocation sequence their IR twins replay
// with a bump register — sound because Alloc rounds every request to whole
// lines and the compiled workloads never Free.
func (a *Arena) Mark() memory.Addr {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.next
}

// BytesUsed reports the high-water mark of arena consumption.
func (a *Arena) BytesUsed() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return uint64(a.next - a.base)
}

// Allocations returns the live allocation addresses in ascending order;
// recovery checkers use it to bound their walks.
func (a *Arena) Allocations() []memory.Addr {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]memory.Addr, 0, len(a.allocated))
	//bbbvet:ignore detlint key collection; result is sorted before returning
	for addr := range a.allocated {
		out = append(out, addr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Sub carves a private sub-arena of size bytes out of a, so each workload
// thread can allocate without contending (the paper's non-conflicting
// workloads partition their data this way).
func (a *Arena) Sub(size uint64) *Arena {
	base := a.Alloc(size)
	return New(base, roundUp(size))
}
