package palloc

import (
	"testing"
	"testing/quick"

	"bbb/internal/memory"
)

func arena() *Arena { return FromLayout(memory.DefaultLayout()) }

func TestAllocAligned(t *testing.T) {
	a := arena()
	for _, sz := range []uint64{1, 7, 64, 65, 200} {
		addr := a.Alloc(sz)
		if addr%memory.LineSize != 0 {
			t.Fatalf("Alloc(%d) = %#x, not line-aligned", sz, addr)
		}
	}
}

func TestAllocDistinctLines(t *testing.T) {
	a := arena()
	p := a.Alloc(8)
	q := a.Alloc(8)
	if memory.LineAddr(p) == memory.LineAddr(q) {
		t.Fatal("two allocations share a cache line")
	}
}

func TestFreeReuse(t *testing.T) {
	a := arena()
	p := a.Alloc(64)
	a.Free(p)
	q := a.Alloc(64)
	if p != q {
		t.Fatalf("freed chunk not reused: %#x vs %#x", p, q)
	}
	if a.Live() != 1 {
		t.Fatalf("Live = %d, want 1", a.Live())
	}
}

func TestDoubleFreePanics(t *testing.T) {
	a := arena()
	p := a.Alloc(64)
	a.Free(p)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	a.Free(p)
}

func TestExhaustionPanics(t *testing.T) {
	a := New(memory.DefaultLayout().PersistentBase, 128)
	a.Alloc(64)
	a.Alloc(64)
	defer func() {
		if recover() == nil {
			t.Fatal("exhausted arena did not panic")
		}
	}()
	a.Alloc(64)
}

func TestSubArenaDisjoint(t *testing.T) {
	a := arena()
	s1 := a.Sub(1 << 20)
	s2 := a.Sub(1 << 20)
	p1, p2 := s1.Alloc(64), s2.Alloc(64)
	if p1 == p2 {
		t.Fatal("sub-arenas overlap")
	}
	for i := 0; i < 100; i++ {
		s1.Alloc(4096)
	}
}

func TestAllocationsSorted(t *testing.T) {
	a := arena()
	for i := 0; i < 10; i++ {
		a.Alloc(64)
	}
	got := a.Allocations()
	if len(got) != 10 {
		t.Fatalf("Allocations len = %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatal("Allocations not ascending")
		}
	}
}

// Property: live allocations never overlap.
func TestPropertyNoOverlap(t *testing.T) {
	f := func(ops []uint16) bool {
		a := arena()
		type chunk struct {
			addr memory.Addr
			size uint64
		}
		var live []chunk
		for _, op := range ops {
			if op%4 == 0 && len(live) > 0 {
				i := int(op) % len(live)
				a.Free(live[i].addr)
				live = append(live[:i], live[i+1:]...)
				continue
			}
			sz := uint64(op%300) + 1
			addr := a.Alloc(sz)
			live = append(live, chunk{addr, roundUp(sz)})
		}
		for i := range live {
			for j := i + 1; j < len(live); j++ {
				aLo, aHi := live[i].addr, live[i].addr+memory.Addr(live[i].size)
				bLo, bHi := live[j].addr, live[j].addr+memory.Addr(live[j].size)
				if aLo < bHi && bLo < aHi {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
