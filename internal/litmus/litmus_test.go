package litmus

import (
	"bytes"
	"os"
	"reflect"
	"testing"

	"bbb/internal/persistency"
	"bbb/internal/system"
	"bbb/internal/workload"
)

// TestCorpusValidates pins corpus hygiene: every test validates, names
// are unique, and thread counts stay within the shapes we generate.
func TestCorpusValidates(t *testing.T) {
	seen := map[string]bool{}
	for _, tc := range Corpus() {
		if err := tc.Validate(); err != nil {
			t.Errorf("%s: %v", tc.Name, err)
		}
		if seen[tc.Name] {
			t.Errorf("duplicate test name %q", tc.Name)
		}
		seen[tc.Name] = true
		if n := len(tc.Threads); n < 1 || n > 2 {
			t.Errorf("%s: %d threads, corpus shapes use 1 or 2", tc.Name, n)
		}
	}
	if len(seen) < 12 {
		t.Errorf("corpus has %d tests, expected the full shape set (>=12)", len(seen))
	}
}

// TestCorpusDeterministic pins that two generator invocations agree, both
// symbolically and as emitted source.
func TestCorpusDeterministic(t *testing.T) {
	if !reflect.DeepEqual(Corpus(), Corpus()) {
		t.Fatal("Corpus() is not deterministic")
	}
	a, err := EmitGo()
	if err != nil {
		t.Fatal(err)
	}
	b, err := EmitGo()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("EmitGo() is not deterministic")
	}
}

// TestCorpusGenFresh fails when corpus.go and the checked-in
// corpus_gen.go drift: rerun `bbblitmus generate -go` to refresh.
func TestCorpusGenFresh(t *testing.T) {
	want, err := EmitGo()
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile("corpus_gen.go")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("corpus_gen.go is stale; run `go run ./cmd/bbblitmus generate -go` to regenerate")
	}
}

// TestGenProgramsMatchCorpus pins that the generated table covers exactly
// the corpus, with one program per thread.
func TestGenProgramsMatchCorpus(t *testing.T) {
	tests := Corpus()
	if len(genPrograms) != len(tests) {
		t.Fatalf("genPrograms has %d entries, corpus has %d", len(genPrograms), len(tests))
	}
	for _, tc := range tests {
		fns, ok := genPrograms[tc.Name]
		if !ok {
			t.Errorf("%s: no generated programs", tc.Name)
			continue
		}
		if len(fns) != len(tc.Threads) {
			t.Errorf("%s: %d generated programs for %d threads", tc.Name, len(fns), len(tc.Threads))
		}
	}
}

// TestOrderedBefore pins the durably-ordered-before relation on the MP
// variants: only flush+fence between the stores orders them.
func TestOrderedBefore(t *testing.T) {
	for _, tc := range []struct {
		name string
		want bool
	}{
		{"mp", false},       // nothing between the stores
		{"mp+flush", false}, // clwb without sfence orders nothing
		{"mp+fence", true},  // clwb x; sfence: x before y
	} {
		tst, err := ByName(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		st := tst.Stores()
		var x, y Store
		for _, s := range st {
			switch s.Var {
			case vx:
				x = s
			case vy:
				y = s
			}
		}
		if got := tst.OrderedBefore(x, y); got != tc.want {
			t.Errorf("%s: OrderedBefore(x,y) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestStoresEpochs pins epoch assignment on the two-fence chain.
func TestStoresEpochs(t *testing.T) {
	tst, err := ByName("mp3+fence")
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	for _, s := range tst.Stores() {
		got = append(got, s.Epoch)
	}
	if want := []int{0, 1, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("mp3+fence store epochs = %v, want %v", got, want)
	}
}

// TestWorkloadRunsEverySchemeAndChecks smoke-runs every executable twin
// to completion under every scheme; the recovery checker must accept the
// final image, and the final image must be the all-stores-latest outcome.
func TestWorkloadRunsEverySchemeAndChecks(t *testing.T) {
	for _, tc := range Corpus() {
		for _, s := range persistency.Schemes() {
			wl := NewWorkload(tc)
			cfg := system.DefaultConfig(s)
			p := workload.Params{Threads: len(tc.Threads), OpsPerThread: 1, Seed: 1}
			sys, _, _ := workload.RunToCrash(wl, s, cfg, p, 1<<40)
			if err := wl.Check(sys.Mem); err != nil {
				t.Errorf("%s/%s: %v", tc.Name, s, err)
			}
			// Only the battery schemes guarantee the completed run is
			// durable in full: PMEM loses unflushed cache lines at the
			// crash, BEP loses the open epoch.
			tr := persistency.TraitsOf(s)
			if tr.ExplicitPersist || tr.EpochMode {
				continue
			}
			out := wl.ReadOutcome(sys.Mem)
			for i := range tc.Vars {
				if out[i] == 0 && len(tc.WrittenVals(i)) > 0 {
					t.Errorf("%s/%s: var %s still 0 after completed run + flush-on-fail", tc.Name, s, tc.Vars[i])
				}
			}
		}
	}
}

// TestByNameResolvesViaWorkloadRegistry pins the Register hook: witness
// replay resolves litmus workloads by name, with fresh state per lookup.
func TestByNameResolvesViaWorkloadRegistry(t *testing.T) {
	a, err := workload.ByName("litmus/mp+fence")
	if err != nil {
		t.Fatal(err)
	}
	b, err := workload.ByName("litmus/mp+fence")
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("workload.ByName returned a shared litmus instance; replay needs fresh state")
	}
	if a.Name() != "litmus/mp+fence" {
		t.Fatalf("resolved %q", a.Name())
	}
	if _, err := workload.ByName("litmus/nope"); err == nil {
		t.Fatal("unknown litmus name resolved")
	}
}
