// Package conform is the litmus conformance gate: for every corpus test ×
// scheme it enumerates the operationally reachable post-crash outcomes
// with the crash-image model checker (internal/crashmc) and requires them
// to be a subset of the axiomatic allowed set (internal/axiomatic) under
// the scheme's persistency model. It additionally requires the
// battery-complete schemes to expose exactly one reachable image per
// crash point — the paper's strict-persistency collapse — and reports
// (rather than hides) every case where a scheme's model strengthens the
// relaxed Px86 envelope.
//
// A divergence (operational outcome outside the allowed set) is minimized
// with the same greedy shrinker crashmc uses and pinned as a replayable
// crashmc.Witness, so CI failures arrive with a repro: `bbblitmus explain
// -witness <file>` rebuilds the machine and triages it.
package conform

import (
	"fmt"
	"sort"
	"strings"

	"bbb/internal/axiomatic"
	"bbb/internal/crashmc"
	"bbb/internal/engine"
	"bbb/internal/litmus"
	"bbb/internal/persistency"
	"bbb/internal/sweep"
	"bbb/internal/system"
	"bbb/internal/workload"
)

// ModelFor maps a scheme to its Px86-TSO persistency model: PMEM exposes
// relaxed Px86, BEP orders through epochs, and the battery-complete
// schemes are strict (persist order = visibility order, §III-D).
func ModelFor(s persistency.Scheme) axiomatic.Model {
	t := persistency.TraitsOf(s)
	switch {
	case t.EpochMode:
		return axiomatic.Epoch
	case t.ExplicitPersist:
		return axiomatic.Relaxed
	default:
		return axiomatic.Strict
	}
}

// Options configure a conformance run.
type Options struct {
	// Tests to check; nil means the full corpus.
	Tests []*litmus.Test
	// Schemes to check; nil means every scheme.
	Schemes []persistency.Scheme
	// Points is the number of crash points per pair, spread over the
	// run's makespan plus one past completion. Zero means 8.
	Points int
	// Parallel fans test×scheme pairs out over sweep.Map; the report is
	// identical at any width. Zero or one means serial.
	Parallel int
	// Bounds prune each point's enumeration (crashmc defaults if zero).
	Bounds crashmc.Bounds
}

// maxDivergences caps the divergences recorded per pair; the counts stay
// exact via Divergent.
const maxDivergences = 4

// Divergence is one operational outcome outside the allowed set.
type Divergence struct {
	CrashCycle engine.Cycle
	Outcome    axiomatic.Outcome
	// Formatted is the human-readable outcome ("x=1 y=0").
	Formatted string
	// Witness replays the minimized surviving-write subset that produces
	// an out-of-envelope outcome (`bbblitmus explain`).
	Witness *crashmc.Witness
}

// PairResult is one test × scheme conformance check.
type PairResult struct {
	Test   string
	Scheme persistency.Scheme
	Model  axiomatic.Model
	// Points is the number of crash points explored; MultiImagePoints
	// counts those where a strict scheme exposed more than one reachable
	// image (must be zero — the strict-persistency collapse).
	Points           int
	MultiImagePoints int
	// Operational is the deduplicated sorted outcome set crashmc reached.
	Operational []axiomatic.Outcome
	// AllowedCount and RelaxedCount size the scheme-model and relaxed
	// Px86 allowed sets; Collapsed flags AllowedCount < RelaxedCount —
	// the scheme provably strengthens relaxed Px86 on this shape.
	AllowedCount int
	RelaxedCount int
	Collapsed    bool
	// Divergent counts operational outcomes outside the allowed set;
	// Divergences holds the first few, minimized and witnessed.
	Divergent   int
	Divergences []Divergence
}

// Ok reports whether the pair conforms: operational ⊆ allowed, and (for
// strict schemes) one image per crash point.
func (p PairResult) Ok() bool { return p.Divergent == 0 && p.MultiImagePoints == 0 }

// Report aggregates a conformance run.
type Report struct {
	Points int
	Pairs  []PairResult
}

// Ok reports whether every pair conforms.
func (r Report) Ok() bool {
	for _, p := range r.Pairs {
		if !p.Ok() {
			return false
		}
	}
	return true
}

// FirstWitness returns the first divergence witness, if any.
func (r Report) FirstWitness() *crashmc.Witness {
	for _, p := range r.Pairs {
		for _, d := range p.Divergences {
			if d.Witness != nil {
				return d.Witness
			}
		}
	}
	return nil
}

// Run executes the conformance matrix.
func Run(o Options) Report {
	tests := o.Tests
	if tests == nil {
		tests = litmus.Corpus()
	}
	schemes := o.Schemes
	if schemes == nil {
		schemes = persistency.Schemes()
	}
	points := o.Points
	if points <= 0 {
		points = 8
	}
	bounds := o.Bounds

	type pair struct {
		t *litmus.Test
		s persistency.Scheme
	}
	var pairs []pair
	for _, t := range tests {
		for _, s := range schemes {
			pairs = append(pairs, pair{t, s})
		}
	}
	rep := Report{Points: points}
	rep.Pairs = sweep.Map(o.Parallel, len(pairs), func(i int) PairResult {
		return checkPair(pairs[i].t, pairs[i].s, points, bounds)
	})
	return rep
}

// checkPair runs the full conformance check for one test × scheme.
func checkPair(t *litmus.Test, s persistency.Scheme, points int, bounds crashmc.Bounds) PairResult {
	model := ModelFor(s)
	allowed := axiomatic.Enumerate(t, model)
	relaxed := axiomatic.Enumerate(t, axiomatic.Relaxed)
	strict := model == axiomatic.Strict

	res := PairResult{
		Test:         t.Name,
		Scheme:       s,
		Model:        model,
		Points:       points,
		AllowedCount: len(allowed.Outcomes),
		RelaxedCount: len(relaxed.Outcomes),
		Collapsed:    len(allowed.Outcomes) < len(relaxed.Outcomes),
	}

	wl := litmus.NewWorkload(t)
	cfg := system.DefaultConfig(s)
	params := workload.Params{Threads: len(t.Threads), OpsPerThread: 1, Seed: 1}
	end := workload.Run(wl, s, cfg, params).Cycles

	// Crash cycles: spread over the makespan, then one safely past
	// completion so the finished image is always a point.
	cycles := make([]engine.Cycle, 0, points)
	for i := 1; i < points; i++ {
		cy := engine.Cycle(1) + end*engine.Cycle(i)/engine.Cycle(points)
		if n := len(cycles); n > 0 && cycles[n-1] == cy {
			continue
		}
		cycles = append(cycles, cy)
	}
	cycles = append(cycles, end+1000)

	mcCfg := crashmc.Config{Workload: wl, Scheme: s, System: cfg, Params: params}
	var outcomes []axiomatic.Outcome
	for _, cy := range cycles {
		sys, finished := workload.BuildToCrash(wl, s, cfg, params, cy)
		rec := crashmc.Capture(sys, cy, finished)
		enum := crashmc.Enumerate(rec, bounds)
		if strict && len(enum.Images) != 1 {
			res.MultiImagePoints++
		}
		for _, img := range enum.Images {
			scratch := rec.Base.Clone()
			crashmc.ApplyOverlay(scratch, img.Overlay)
			out := axiomatic.Outcome(wl.ReadOutcome(scratch))
			outcomes = append(outcomes, out)
			if allowed.Contains(out) {
				continue
			}
			res.Divergent++
			if len(res.Divergences) >= maxDivergences {
				continue
			}
			// Minimize against the axiomatic envelope: shrink the
			// surviving set while its image stays outside the allowed set.
			check := func(set []int) string {
				m := crashmc.Materialize(rec, set)
				sc := rec.Base.Clone()
				crashmc.ApplyOverlay(sc, m.Overlay)
				o := axiomatic.Outcome(wl.ReadOutcome(sc))
				if allowed.Contains(o) {
					return ""
				}
				return divergenceErr(t, s, model, o)
			}
			minimized, errStr := crashmc.Minimize(rec, img.Survivors, check)
			mo := outcomeOf(rec, wl, minimized)
			res.Divergences = append(res.Divergences, Divergence{
				CrashCycle: cy,
				Outcome:    mo,
				Formatted:  axiomatic.FormatOutcome(t, mo),
				Witness:    crashmc.NewWitness(mcCfg, cy, rec, minimized, errStr),
			})
		}
	}

	sort.Slice(outcomes, func(i, j int) bool { return outcomes[i].Less(outcomes[j]) })
	for i, o := range outcomes {
		if i == 0 || !o.Equal(outcomes[i-1]) {
			res.Operational = append(res.Operational, o)
		}
	}
	return res
}

// outcomeOf decodes the durable outcome of one survival set.
func outcomeOf(rec *crashmc.Record, wl *litmus.Workload, set []int) axiomatic.Outcome {
	img := crashmc.Materialize(rec, set)
	sc := rec.Base.Clone()
	crashmc.ApplyOverlay(sc, img.Overlay)
	return axiomatic.Outcome(wl.ReadOutcome(sc))
}

// divergenceErr is the witness Err string for an out-of-envelope outcome.
func divergenceErr(t *litmus.Test, s persistency.Scheme, m axiomatic.Model, o axiomatic.Outcome) string {
	return fmt.Sprintf("litmus %s/%s: outcome {%s} not allowed by the %s model",
		t.Name, s, axiomatic.FormatOutcome(t, o), m)
}

// String renders the conformance matrix, one line per pair.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-8s %-8s %8s %9s %8s  %s\n",
		"test", "scheme", "model", "observed", "allowed", "relaxed", "verdict")
	for _, p := range r.Pairs {
		verdict := "ok"
		if !p.Ok() {
			verdict = fmt.Sprintf("DIVERGE (%d outcomes, %d multi-image points)", p.Divergent, p.MultiImagePoints)
		} else if p.Collapsed {
			verdict = "ok (strengthened)"
		}
		fmt.Fprintf(&b, "%-12s %-8s %-8s %8d %9d %8d  %s\n",
			p.Test, p.Scheme, p.Model, len(p.Operational), p.AllowedCount, p.RelaxedCount, verdict)
	}
	return b.String()
}

// Summary is the one-line roll-up for CLIs and CI logs.
func (r Report) Summary() string {
	collapsed, diverged := 0, 0
	for _, p := range r.Pairs {
		if p.Collapsed {
			collapsed++
		}
		if !p.Ok() {
			diverged++
		}
	}
	status := "conformant"
	if diverged > 0 {
		status = fmt.Sprintf("%d pairs DIVERGED", diverged)
	}
	return fmt.Sprintf("litmus conformance: %d pairs × %d points — %s, %d strengthened vs relaxed Px86",
		len(r.Pairs), r.Points, status, collapsed)
}
