package conform

import (
	"fmt"
	"strings"

	"bbb/internal/axiomatic"
	"bbb/internal/crashmc"
	"bbb/internal/litmus"
	"bbb/internal/persistency"
)

// Explanation is the triage of one divergence witness: the rebuilt
// outcome, whether it still escapes the allowed set, and which kind of
// defect that implies.
type Explanation struct {
	Test   string
	Scheme persistency.Scheme
	Model  axiomatic.Model
	// Outcome is the durable outcome the witnessed survival set produces
	// on the rebuilt machine; Formatted renders it with variable names.
	Outcome   axiomatic.Outcome
	Formatted string
	// Reproduced reports the outcome still lying outside the model's
	// allowed set.
	Reproduced bool
	// Note is the triage verdict (simulator bug vs stale witness vs
	// broken strengthening), suitable for printing.
	Note string
}

// Explain replays a conformance divergence witness: it rebuilds the
// machine via Witness.Recapture, re-materializes the surviving-write
// subset, and re-judges the outcome against the axiomatic model — the
// litmus analogue of `bbbmc -repro`.
func Explain(w *crashmc.Witness) (Explanation, error) {
	name, ok := strings.CutPrefix(w.Workload, "litmus/")
	if !ok {
		return Explanation{}, fmt.Errorf("conform: witness workload %q is not a litmus test (use bbbmc -repro for workload witnesses)", w.Workload)
	}
	t, err := litmus.ByName(name)
	if err != nil {
		return Explanation{}, err
	}
	scheme, err := persistency.ParseScheme(w.Scheme)
	if err != nil {
		return Explanation{}, err
	}
	wl, rec, survivors, err := w.Recapture()
	if err != nil {
		return Explanation{}, err
	}
	lw, ok := wl.(*litmus.Workload)
	if !ok {
		return Explanation{}, fmt.Errorf("conform: workload %q resolved to %T, not a litmus workload", w.Workload, wl)
	}

	model := ModelFor(scheme)
	out := outcomeOf(rec, lw, survivors)
	allowed := axiomatic.Enumerate(t, model)
	relaxed := axiomatic.Enumerate(t, axiomatic.Relaxed)

	ex := Explanation{
		Test:       t.Name,
		Scheme:     scheme,
		Model:      model,
		Outcome:    out,
		Formatted:  axiomatic.FormatOutcome(t, out),
		Reproduced: !allowed.Contains(out),
	}
	switch {
	case !ex.Reproduced:
		ex.Note = "outcome is now inside the allowed set — the witness is stale (simulator or model changed since it was written); regenerate with `bbblitmus conform`"
	case !relaxed.Contains(out):
		ex.Note = "outcome escapes even relaxed Px86 — a core TSO-persistency bug in the simulator (store order or flush/fence handling), not a scheme strengthening issue"
	default:
		ex.Note = fmt.Sprintf("outcome is Px86-allowed but outside the %s envelope the %s scheme must enforce — the simulator's %s strengthening is broken (persistence-domain capture or drain order)", model, scheme, scheme)
	}
	return ex, nil
}
