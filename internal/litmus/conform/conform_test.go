package conform

import (
	"reflect"
	"strings"
	"testing"

	"bbb/internal/axiomatic"
	"bbb/internal/crashmc"
	"bbb/internal/litmus"
	"bbb/internal/persistency"
	"bbb/internal/system"
	"bbb/internal/workload"
)

// TestModelFor pins the scheme → model mapping the whole gate rests on.
func TestModelFor(t *testing.T) {
	want := map[persistency.Scheme]axiomatic.Model{
		persistency.PMEM:    axiomatic.Relaxed,
		persistency.BEP:     axiomatic.Epoch,
		persistency.BBB:     axiomatic.Strict,
		persistency.BBBProc: axiomatic.Strict,
		persistency.EADR:    axiomatic.Strict,
		persistency.NVCache: axiomatic.Strict,
	}
	for _, s := range persistency.Schemes() {
		if got := ModelFor(s); got != want[s] {
			t.Errorf("ModelFor(%s) = %s, want %s", s, got, want[s])
		}
	}
}

// TestFullMatrixConformant is the gate itself: every corpus test × scheme
// must have its operational outcome set inside the axiomatic allowed set,
// with the battery schemes collapsed to one image per crash point.
func TestFullMatrixConformant(t *testing.T) {
	rep := Run(Options{Points: 6})
	if len(rep.Pairs) != len(litmus.Corpus())*len(persistency.Schemes()) {
		t.Fatalf("matrix has %d pairs, want corpus × schemes = %d",
			len(rep.Pairs), len(litmus.Corpus())*len(persistency.Schemes()))
	}
	if !rep.Ok() {
		t.Fatalf("conformance gate failed:\n%s", rep.String())
	}
	for _, p := range rep.Pairs {
		if len(p.Operational) == 0 {
			t.Errorf("%s/%s: no operational outcomes observed", p.Test, p.Scheme)
		}
		if p.Model == axiomatic.Strict {
			if p.MultiImagePoints != 0 {
				t.Errorf("%s/%s: %d crash points exposed multiple images under a strict scheme",
					p.Test, p.Scheme, p.MultiImagePoints)
			}
		}
	}
}

// TestStrengtheningReportedNotHidden pins the collapse bookkeeping: bare
// mp under a battery scheme is a strict strengthening of relaxed Px86 and
// must be flagged; mp+fence has equal sets and must not be.
func TestStrengtheningReportedNotHidden(t *testing.T) {
	mp, err := litmus.ByName("mp")
	if err != nil {
		t.Fatal(err)
	}
	mpf, err := litmus.ByName("mp+fence")
	if err != nil {
		t.Fatal(err)
	}
	rep := Run(Options{
		Tests:   []*litmus.Test{mp, mpf},
		Schemes: []persistency.Scheme{persistency.PMEM, persistency.BBB},
		Points:  4,
	})
	byKey := map[string]PairResult{}
	for _, p := range rep.Pairs {
		byKey[p.Test+"/"+p.Scheme.String()] = p
	}
	if !byKey["mp/bbb"].Collapsed {
		t.Error("mp/bbb: strict drops the flag-without-payload outcome; Collapsed must be set")
	}
	if byKey["mp/pmem"].Collapsed {
		t.Error("mp/pmem: relaxed vs relaxed cannot collapse")
	}
	if byKey["mp+fence/bbb"].Collapsed {
		t.Error("mp+fence/bbb: the fence already closes the relaxed set; no strengthening to report")
	}
	if s := rep.String(); !strings.Contains(s, "strengthened") {
		t.Errorf("report must surface the strengthening:\n%s", s)
	}
}

// TestPMEMReachesFullPrefixSetOnFencedMP pins that the operational side
// is not vacuously small: at these points PMEM reaches every allowed
// outcome of mp+fence, so the gate is an equality there, not just ⊆.
func TestPMEMReachesFullPrefixSetOnFencedMP(t *testing.T) {
	mpf, err := litmus.ByName("mp+fence")
	if err != nil {
		t.Fatal(err)
	}
	rep := Run(Options{
		Tests:   []*litmus.Test{mpf},
		Schemes: []persistency.Scheme{persistency.PMEM},
		Points:  6,
	})
	p := rep.Pairs[0]
	if p.AllowedCount != 3 || len(p.Operational) != 3 {
		t.Fatalf("mp+fence/pmem: observed %d of %d allowed outcomes; expected the full prefix set",
			len(p.Operational), p.AllowedCount)
	}
}

// TestParallelWidthDeterminism is the satellite requirement: the report
// is deep-equal at every sweep fan-out width.
func TestParallelWidthDeterminism(t *testing.T) {
	opts := Options{Points: 4, Schemes: []persistency.Scheme{persistency.PMEM, persistency.BBB, persistency.BEP}}
	serial := Run(opts)
	for _, width := range []int{2, 8} {
		po := opts
		po.Parallel = width
		if got := Run(po); !reflect.DeepEqual(serial, got) {
			t.Fatalf("conformance report differs between serial and parallel=%d runs", width)
		}
	}
}

// TestExplainTriagesStaleWitness pins the explain path on a fabricated
// witness whose outcome is inside the allowed set: it must replay cleanly
// and triage as stale rather than claim a divergence.
func TestExplainTriagesStaleWitness(t *testing.T) {
	mp, err := litmus.ByName("mp")
	if err != nil {
		t.Fatal(err)
	}
	wl := litmus.NewWorkload(mp)
	s := persistency.PMEM
	cfg := system.DefaultConfig(s)
	params := workload.Params{Threads: len(mp.Threads), OpsPerThread: 1, Seed: 1}
	end := workload.Run(wl, s, cfg, params).Cycles
	cy := end / 2
	sys, finished := workload.BuildToCrash(wl, s, cfg, params, cy)
	rec := crashmc.Capture(sys, cy, finished)

	mcCfg := crashmc.Config{Workload: wl, Scheme: s, System: cfg, Params: params}
	wit := crashmc.NewWitness(mcCfg, cy, rec, nil, "fabricated: empty survival set")
	ex, err := Explain(wit)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Reproduced {
		t.Fatalf("empty survival set produced an out-of-envelope outcome %s under relaxed Px86", ex.Formatted)
	}
	if !strings.Contains(ex.Note, "stale") {
		t.Errorf("non-reproducing witness should triage as stale, got: %s", ex.Note)
	}
	if ex.Test != "mp" || ex.Scheme != persistency.PMEM || ex.Model != axiomatic.Relaxed {
		t.Errorf("explanation misidentified the pair: %+v", ex)
	}
}

// TestExplainRejectsNonLitmusWitness keeps the two repro tools separate:
// workload witnesses belong to bbbmc -repro.
func TestExplainRejectsNonLitmusWitness(t *testing.T) {
	w := &crashmc.Witness{Workload: "linkedlist", Scheme: "pmem"}
	if _, err := Explain(w); err == nil {
		t.Fatal("Explain accepted a non-litmus witness")
	}
}
