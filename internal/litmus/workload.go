package litmus

import (
	"fmt"

	"bbb/internal/cpu"
	"bbb/internal/memory"
	"bbb/internal/palloc"
	"bbb/internal/system"
	"bbb/internal/workload"
)

// progFn is one litmus thread body. v holds each test variable's line
// address, in Test.Vars order; corpus_gen.go defines one progFn per
// thread of every corpus test.
type progFn func(e cpu.Env, v []memory.Addr)

// Workload adapts one litmus test to the workload.Workload interface so
// the machine runner and the crash-image model checker can execute it
// like any Table IV benchmark. Its name is "litmus/<test>".
type Workload struct {
	test  *Test
	addrs []memory.Addr
}

var _ workload.Workload = (*Workload)(nil)

// NewWorkload wraps test t; t must be a corpus test (its executable twin
// must exist in corpus_gen.go).
func NewWorkload(t *Test) *Workload {
	if _, ok := genPrograms[t.Name]; !ok {
		panic(fmt.Sprintf("litmus: test %q has no generated programs (rerun bbblitmus generate -go)", t.Name))
	}
	return &Workload{test: t}
}

func (w *Workload) Name() string        { return "litmus/" + w.test.Name }
func (w *Workload) Description() string { return w.test.Doc }

// PaperPStores is 0: litmus tests are not Table IV rows.
func (w *Workload) PaperPStores() float64 { return 0 }

// Setup gives each variable its own persistent cache line, zeroed.
func (w *Workload) Setup(mem *memory.Memory, arena *palloc.Arena, p workload.Params) {
	w.addrs = make([]memory.Addr, len(w.test.Vars))
	for i := range w.test.Vars {
		a := arena.Alloc(memory.LineSize)
		pokeVar(mem, a, 0)
		w.addrs[i] = a
	}
}

// Programs returns the test's per-thread executable twins. The thread
// count is part of the test, so p.Threads must match it.
func (w *Workload) Programs(p workload.Params) []system.Program {
	fns := genPrograms[w.test.Name]
	if p.Threads != len(fns) {
		panic(fmt.Sprintf("litmus %s: test has %d threads, params ask for %d", w.test.Name, len(fns), p.Threads))
	}
	progs := make([]system.Program, len(fns))
	for i, fn := range fns {
		fn := fn
		progs[i] = func(e cpu.Env) { fn(e, w.addrs) }
	}
	return progs
}

// Check accepts any durable image where each variable holds either its
// zero init or some value the test actually stores to it. Which
// combinations a scheme may legally expose is the axiomatic layer's
// question, not this recovery-shaped sanity check's.
func (w *Workload) Check(mem *memory.Memory) error {
	for i, name := range w.test.Vars {
		got := peekVar(mem, w.addrs[i])
		if got == 0 {
			continue
		}
		ok := false
		for _, v := range w.test.WrittenVals(i) {
			if v == got {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("litmus %s: var %s holds %d, which no store ever wrote", w.test.Name, name, got)
		}
	}
	return nil
}

// VarAddrs returns each variable's line address, in Test.Vars order.
// Valid after Setup.
func (w *Workload) VarAddrs() []memory.Addr { return w.addrs }

// ReadOutcome decodes a durable image into the per-variable outcome
// vector the axiomatic layer speaks.
func (w *Workload) ReadOutcome(mem *memory.Memory) []uint64 {
	out := make([]uint64, len(w.addrs))
	for i, a := range w.addrs {
		out[i] = peekVar(mem, a)
	}
	return out
}

// peekVar and pokeVar are the little-endian uint64 image accessors (the
// workload package keeps its equivalents unexported).
func peekVar(mem *memory.Memory, a memory.Addr) uint64 {
	b := mem.Peek(a, 8)
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func pokeVar(mem *memory.Memory, a memory.Addr, v uint64) {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * uint(i)))
	}
	mem.Poke(a, b)
}

// init publishes every corpus test under "litmus/<name>" so witness
// replay (workload.ByName) can rebuild litmus machines.
func init() {
	for _, t := range Corpus() {
		t := t
		workload.Register(func() workload.Workload { return NewWorkload(t) })
	}
}
