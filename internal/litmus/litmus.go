// Package litmus is the persistency litmus-test tier: a small DSL for
// multi-threaded programs over named persistent variables, plus a
// deterministic generator (corpus.go) that emits every test in two twin
// forms —
//
//   - an executable form: per-thread cpu.Env programs (corpus_gen.go,
//     emitted by emit.go and wrapped into a workload.Workload by
//     workload.go) that run on the simulated machine, so internal/crashmc
//     can enumerate the operationally reachable post-crash states; and
//   - a symbolic form: the Test value itself, whose store/flush/fence
//     events internal/axiomatic enumerates under the Px86-TSO persistency
//     axioms to compute the declaratively *allowed* post-crash states.
//
// The conformance driver (internal/litmus/conform) gates operational ⊆
// allowed for every test × scheme, which turns the crash-image model
// checker from a per-scheme expectation table into a conformance suite
// against the "Taming x86-TSO Persistency" model (PAPERS.md).
//
// Every variable lives on its own cache line and starts at zero; a
// post-crash outcome is the durable value of each variable. Loads carry no
// persistency semantics — they are in the corpus only so the classic
// shapes (SB, MP, LB) run the machine the way their namesakes do.
package litmus

import "fmt"

// OpKind is one litmus instruction kind.
type OpKind uint8

const (
	// OpStore writes Val to Var (a persisting 8-byte store).
	OpStore OpKind = iota
	// OpLoad reads Var; persistency-irrelevant, kept for shape fidelity.
	OpLoad
	// OpFlush writes Var's line back (clwb under PMEM; no-op elsewhere).
	OpFlush
	// OpFence orders earlier flushed lines before later stores (sfence
	// under PMEM, epoch boundary under BEP, no-op under the batteries).
	OpFence
	// OpCAS atomically writes Val to Var iff Var currently holds Old
	// (lock cmpxchg). A failed CAS writes nothing — its store event is
	// conditional on the memory order, which is the whole point of the
	// cas corpus shapes. Like the hardware instruction, a CAS drains the
	// store buffer but is NOT a persist fence: it neither flushes its
	// line nor orders earlier flushes.
	OpCAS
)

func (k OpKind) String() string {
	switch k {
	case OpStore:
		return "store"
	case OpLoad:
		return "load"
	case OpFlush:
		return "flush"
	case OpFence:
		return "fence"
	case OpCAS:
		return "cas"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is one litmus instruction. Var indexes Test.Vars (unused for OpFence).
type Op struct {
	Kind OpKind
	Var  int
	Val  uint64 // OpStore and OpCAS: the (new) value written
	Old  uint64 // OpCAS only: the expected value
}

// St, Ld, Fl, Fn and Cs build ops; the corpus reads like the litmus
// literature.
func St(v int, val uint64) Op      { return Op{Kind: OpStore, Var: v, Val: val} }
func Ld(v int) Op                  { return Op{Kind: OpLoad, Var: v} }
func Fl(v int) Op                  { return Op{Kind: OpFlush, Var: v} }
func Fn() Op                       { return Op{Kind: OpFence, Var: -1} }
func Cs(v int, old, new uint64) Op { return Op{Kind: OpCAS, Var: v, Val: new, Old: old} }

// Test is one litmus program: Threads[t] runs on core t, all variables
// start at zero, and the question a persistency model answers is which
// variable valuations a crash may leave durable.
type Test struct {
	Name string
	Doc  string
	// Vars names the persistent variables; index = variable id.
	Vars    []string
	Threads [][]Op
}

// Store is one store event of the symbolic form.
type Store struct {
	// ID is the global event id: thread-major, program order within a
	// thread — the index into Stores().
	ID     int
	Thread int
	// Pos is the op's index within its thread.
	Pos int
	Var int
	Val uint64
	// Epoch counts the fences program-order-before this store in its
	// thread (the BEP epoch the store lands in). A CAS does not open an
	// epoch — it is not a persist fence.
	Epoch int
	// CAS marks a conditional store: it writes Val only when the var
	// holds Old at its point in the memory order. The axiomatic
	// enumerator replays values along each interleaving to decide.
	CAS bool
	Old uint64
}

// Stores lists the test's store events in (thread, program-order) order.
func (t *Test) Stores() []Store {
	var out []Store
	for th, ops := range t.Threads {
		epoch := 0
		for pos, op := range ops {
			switch op.Kind {
			case OpFence:
				epoch++
			case OpStore, OpCAS:
				out = append(out, Store{
					ID: len(out), Thread: th, Pos: pos,
					Var: op.Var, Val: op.Val, Epoch: epoch,
					CAS: op.Kind == OpCAS, Old: op.Old,
				})
			}
		}
	}
	return out
}

// OrderedBefore reports whether store a must persist before store b under
// the relaxed Px86 axioms: both on one thread, with a flush of a's line
// and then a fence between them in program order (clwb x; sfence). This
// is the durably-ordered-before relation the axiomatic Relaxed model
// closes persist sets under.
func (t *Test) OrderedBefore(a, b Store) bool {
	if a.Thread != b.Thread || a.Pos >= b.Pos {
		return false
	}
	ops := t.Threads[a.Thread]
	for f := a.Pos + 1; f < b.Pos; f++ {
		if ops[f].Kind != OpFlush || ops[f].Var != a.Var {
			continue
		}
		for n := f + 1; n < b.Pos; n++ {
			if ops[n].Kind == OpFence {
				return true
			}
		}
	}
	return false
}

// WrittenVals returns every value the test may store to var v, in
// first-store order. A CAS contributes its new value whether or not any
// execution lets it succeed — the set is a superset of the writable
// values, which is the right direction for the recovery checker's
// accept-list (the axiomatic layer answers the exact question). The
// executable twin's recovery checker accepts only these (or the zero
// init) as durable values.
func (t *Test) WrittenVals(v int) []uint64 {
	var out []uint64
	for _, s := range t.Stores() {
		if s.Var != v {
			continue
		}
		dup := false
		for _, x := range out {
			if x == s.Val {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, s.Val)
		}
	}
	return out
}

// Validate rejects malformed tests (bad var indices, stores of zero —
// indistinguishable from the init value — or empty threads), so the
// generator and any hand-written test fail loudly at build time.
func (t *Test) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("litmus: test with empty name")
	}
	if len(t.Threads) == 0 {
		return fmt.Errorf("litmus %s: no threads", t.Name)
	}
	for th, ops := range t.Threads {
		if len(ops) == 0 {
			return fmt.Errorf("litmus %s: thread %d is empty", t.Name, th)
		}
		for i, op := range ops {
			switch op.Kind {
			case OpFence:
				// Var unused.
			case OpCAS:
				if op.Val == op.Old {
					return fmt.Errorf("litmus %s: thread %d op %d CAS writes its own expectation %d (invisible)", t.Name, th, i, op.Val)
				}
				fallthrough
			case OpStore:
				if op.Val == 0 {
					return fmt.Errorf("litmus %s: thread %d op %d stores 0 (aliases the init value)", t.Name, th, i)
				}
				fallthrough
			case OpLoad, OpFlush:
				if op.Var < 0 || op.Var >= len(t.Vars) {
					return fmt.Errorf("litmus %s: thread %d op %d references var %d of %d", t.Name, th, i, op.Var, len(t.Vars))
				}
			default:
				return fmt.Errorf("litmus %s: thread %d op %d has unknown kind %d", t.Name, th, i, op.Kind)
			}
		}
	}
	return nil
}
