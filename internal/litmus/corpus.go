package litmus

import "fmt"

// Variable ids shared by every corpus shape: x=0, y=1, z=2.
const (
	vx = 0
	vy = 1
	vz = 2
)

// Corpus returns the generated litmus tests, in a fixed deterministic
// order. Each classic shape appears bare (no persist instructions — the
// weakest PMEM behavior), with flushes only (clwb without sfence orders
// nothing under Px86), and with flush+fence (the strongest code the PMEM
// API offers). The single-thread shapes probe write-back interactions the
// two-thread shapes can't: same-line double writes, multi-epoch chains,
// and a line dirtied in two different epochs.
//
// The executable twin of each test lives in corpus_gen.go, emitted from
// this corpus by `bbblitmus generate -go` (see emit.go); a freshness test
// keeps the two in sync.
func Corpus() []*Test {
	tests := []*Test{
		{
			Name: "sb",
			Doc:  "store buffering: two threads store then read the other's var; no persist ops, so any store subset may survive",
			Vars: []string{"x", "y"},
			Threads: [][]Op{
				{St(vx, 1), Ld(vy)},
				{St(vy, 1), Ld(vx)},
			},
		},
		{
			Name: "sb+flush",
			Doc:  "store buffering with clwb but no sfence: flushes alone order nothing under Px86, so the allowed set matches bare sb",
			Vars: []string{"x", "y"},
			Threads: [][]Op{
				{St(vx, 1), Fl(vx), Ld(vy)},
				{St(vy, 1), Fl(vy), Ld(vx)},
			},
		},
		{
			Name: "sb+fence",
			Doc:  "store buffering with clwb;sfence after each store: still all four outcomes, since the fences order nothing across threads",
			Vars: []string{"x", "y"},
			Threads: [][]Op{
				{St(vx, 1), Fl(vx), Fn(), Ld(vy)},
				{St(vy, 1), Fl(vy), Fn(), Ld(vx)},
			},
		},
		{
			Name: "mp",
			Doc:  "message passing: unfenced publish, so relaxed Px86 allows the flag to persist without the payload",
			Vars: []string{"x", "y"},
			Threads: [][]Op{
				{St(vx, 1), St(vy, 1)},
				{Ld(vy), Ld(vx)},
			},
		},
		{
			Name: "mp+flush",
			Doc:  "message passing with clwb x but no sfence before the flag: the flush orders nothing, y=1∧x=0 stays allowed",
			Vars: []string{"x", "y"},
			Threads: [][]Op{
				{St(vx, 1), Fl(vx), St(vy, 1)},
				{Ld(vy), Ld(vx)},
			},
		},
		{
			Name: "mp+fence",
			Doc:  "message passing with clwb x; sfence before the flag store: the canonical Px86 publish — flag durable implies payload durable",
			Vars: []string{"x", "y"},
			Threads: [][]Op{
				{St(vx, 1), Fl(vx), Fn(), St(vy, 1)},
				{Ld(vy), Ld(vx)},
			},
		},
		{
			Name: "lb",
			Doc:  "load buffering: loads then stores; persistency-wise two unordered stores on different threads",
			Vars: []string{"x", "y"},
			Threads: [][]Op{
				{Ld(vy), St(vx, 1)},
				{Ld(vx), St(vy, 1)},
			},
		},
		{
			Name: "lb+flush",
			Doc:  "load buffering with a trailing clwb per thread and no sfence: persistency unchanged from bare lb",
			Vars: []string{"x", "y"},
			Threads: [][]Op{
				{Ld(vy), St(vx, 1), Fl(vx)},
				{Ld(vx), St(vy, 1), Fl(vy)},
			},
		},
		{
			Name: "2+2w",
			Doc:  "2+2W: both threads write both vars in opposite orders with no persist ops; any write subset may survive, modulo TSO coherence per var",
			Vars: []string{"x", "y"},
			Threads: [][]Op{
				{St(vx, 1), St(vy, 2)},
				{St(vy, 1), St(vx, 2)},
			},
		},
		{
			Name: "2+2w+fence",
			Doc:  "2+2W with clwb;sfence between each thread's writes: each thread's second store durable implies its first is",
			Vars: []string{"x", "y"},
			Threads: [][]Op{
				{St(vx, 1), Fl(vx), Fn(), St(vy, 2)},
				{St(vy, 1), Fl(vy), Fn(), St(vx, 2)},
			},
		},
		{
			Name: "wb",
			Doc:  "write-back: one thread dirties x twice around y and z with no persist ops; exercises same-line coalescing in the cache",
			Vars: []string{"x", "y", "z"},
			Threads: [][]Op{
				{St(vx, 1), St(vy, 1), St(vx, 2), St(vz, 1)},
			},
		},
		{
			Name: "wb+fence",
			Doc:  "write-back with clwb x; clwb y; sfence before the z store: z durable implies the final x and y are",
			Vars: []string{"x", "y", "z"},
			Threads: [][]Op{
				{St(vx, 1), St(vy, 1), St(vx, 2), Fl(vx), Fl(vy), Fn(), St(vz, 1)},
			},
		},
		{
			Name: "mp3",
			Doc:  "three-store chain on one thread, unfenced: under relaxed Px86 all eight persist subsets are allowed",
			Vars: []string{"x", "y", "z"},
			Threads: [][]Op{
				{St(vx, 1), St(vy, 1), St(vz, 1)},
			},
		},
		{
			Name: "mp3+fence",
			Doc:  "three-store chain with clwb;sfence between each link: persist sets collapse to the four program-order prefixes",
			Vars: []string{"x", "y", "z"},
			Threads: [][]Op{
				{St(vx, 1), Fl(vx), Fn(), St(vy, 1), Fl(vy), Fn(), St(vz, 1)},
			},
		},
		{
			Name: "2epoch-line",
			Doc:  "one line dirtied in two consecutive epochs, then a dependent store: probes per-epoch write-back when a line spans epochs",
			Vars: []string{"x", "y"},
			Threads: [][]Op{
				{St(vx, 1), Fl(vx), Fn(), St(vx, 2), Fl(vx), Fn(), St(vy, 1)},
			},
		},
		{
			Name: "cas-mp",
			Doc:  "message passing with a CAS flag, unfenced: the CAS always succeeds (y starts 0) but is no persist fence, so relaxed still allows flag-without-payload",
			Vars: []string{"x", "y"},
			Threads: [][]Op{
				{St(vx, 1), Cs(vy, 0, 1)},
				{Ld(vy), Ld(vx)},
			},
		},
		{
			Name: "cas-mp+fence",
			Doc:  "message passing publishing via clwb x; sfence; CAS flag — the pds commit discipline: flag durable implies payload durable under every model",
			Vars: []string{"x", "y"},
			Threads: [][]Op{
				{St(vx, 1), Fl(vx), Fn(), Cs(vy, 0, 1)},
				{Ld(vy), Ld(vx)},
			},
		},
		{
			Name: "cas-fail",
			Doc:  "a CAS whose expectation never matches (x holds 1, the CAS expects 5): a failed CAS writes nothing, so 7 must appear in no model's outcome set",
			Vars: []string{"x", "y"},
			Threads: [][]Op{
				{St(vx, 1), Cs(vx, 5, 7), St(vy, 1)},
			},
		},
		{
			Name: "cas-chain",
			Doc:  "cross-thread increment chain: thread 1's CAS expects thread 0's new value, so x=2 is reachable only in memory orders where thread 0's CAS lands first",
			Vars: []string{"x"},
			Threads: [][]Op{
				{Cs(vx, 0, 1)},
				{Cs(vx, 1, 2)},
			},
		},
		{
			Name: "cas-race",
			Doc:  "two threads race a CAS on x from 0, then store a private flag: exactly one CAS succeeds per memory order; strict forbids any flag durable while x is still 0",
			Vars: []string{"x", "y", "z"},
			Threads: [][]Op{
				{Cs(vx, 0, 1), St(vy, 1)},
				{Cs(vx, 0, 2), St(vz, 1)},
			},
		},
	}
	for _, t := range tests {
		if err := t.Validate(); err != nil {
			panic(err)
		}
	}
	return tests
}

// ByName finds a corpus test.
func ByName(name string) (*Test, error) {
	for _, t := range Corpus() {
		if t.Name == name {
			return t, nil
		}
	}
	return nil, fmt.Errorf("litmus: unknown test %q", name)
}
