// Package energy implements the paper's §IV-C draining cost model: the
// energy to flush eADR's caches versus BBB's bbPBs at a crash (Table VII),
// the time to drain them over the NVMM channels (Table VIII), and the
// battery volume and die-footprint estimates for SuperCap and Li-thin
// energy sources (Tables IX and X), over the Table V mobile- and
// server-class platforms.
//
// Calibration note (documented in DESIGN.md): the per-byte movement
// energies are the paper's Table VI values verbatim. The battery sizing
// reproduces every Table IX/X entry exactly when the nominal technology
// densities (1e-4 and 1e-2 Wh/cm^3) are divided by a 10x provisioning
// factor, which the model exposes as ProvisionFactor.
package energy

import "math"

// Platform is a Table V system class.
type Platform struct {
	Name     string
	Cores    int
	L1Bytes  uint64 // total across cores
	L2Bytes  uint64
	L3Bytes  uint64
	Channels int
	// CoreAreaMM2 is the reference core footprint used for battery-area
	// ratios (the paper uses a 2.61 mm^2 mobile core for both platforms).
	CoreAreaMM2 float64
}

// TotalCacheBytes is the full hierarchy capacity.
func (p Platform) TotalCacheBytes() uint64 { return p.L1Bytes + p.L2Bytes + p.L3Bytes }

// Mobile is Table V's mobile-class platform (6 cores, 6x128 KiB L1,
// 8 MiB L2, 2 memory channels), modeled on an Arm-based phone SoC.
func Mobile() Platform {
	return Platform{
		Name:        "Mobile Class",
		Cores:       6,
		L1Bytes:     6 * 128 * 1024,
		L2Bytes:     8 * 1024 * 1024,
		Channels:    2,
		CoreAreaMM2: 2.61,
	}
}

// Server is Table V's server-class platform (32 cores, 32x32 KiB L1,
// 32x1 MiB L2, 2x35.75 MiB L3, 12 channels), modeled on a Xeon Platinum.
func Server() Platform {
	return Platform{
		Name:        "Server Class",
		Cores:       32,
		L1Bytes:     32 * 32 * 1024,
		L2Bytes:     32 * 1024 * 1024,
		L3Bytes:     2 * 35.75 * 1024 * 1024,
		Channels:    12,
		CoreAreaMM2: 2.61,
	}
}

// Platforms returns both Table V systems.
func Platforms() []Platform { return []Platform{Mobile(), Server()} }

// CostModel carries the §IV-C constants.
type CostModel struct {
	// SRAMAccessPJPerByte is the cost of reading the data out of SRAM
	// (Table VI: 1 pJ/B; negligible next to movement but modeled).
	SRAMAccessPJPerByte float64
	// L1ToNVMM / L2ToNVMM / L3ToNVMM are the Table VI movement costs in
	// nJ/B. bbPB entries drain at the L1 cost (they sit beside the L1D).
	L1ToNVMMNJPerByte float64
	L2ToNVMMNJPerByte float64
	L3ToNVMMNJPerByte float64
	// DirtyFraction is the measured average fraction of dirty blocks used
	// for eADR's *average* drain estimates (§V-A: 44.9%).
	DirtyFraction float64
	// ChannelWriteBW is the per-channel NVMM write bandwidth in B/s used
	// for drain-time estimates (Optane-derived, ~2.3 GB/s).
	ChannelWriteBW float64
	// LineBytes is the drained block size.
	LineBytes int
	// ProvisionFactor divides the nominal battery energy density when
	// sizing (see the package comment); 10 reproduces the paper.
	ProvisionFactor float64
}

// DefaultCostModel returns the constants that reproduce Tables VI-X.
func DefaultCostModel() CostModel {
	return CostModel{
		SRAMAccessPJPerByte: 1,
		L1ToNVMMNJPerByte:   11.839,
		L2ToNVMMNJPerByte:   11.228,
		L3ToNVMMNJPerByte:   11.228,
		DirtyFraction:       0.449,
		ChannelWriteBW:      2.3e9,
		LineBytes:           64,
		ProvisionFactor:     10,
	}
}

// BatteryTech is an energy-source technology with its volumetric density.
type BatteryTech struct {
	Name            string
	DensityWhPerCm3 float64
}

// SuperCap is the graphene supercapacitor technology (~1e-4 Wh/cm^3).
func SuperCap() BatteryTech { return BatteryTech{Name: "SuperCap", DensityWhPerCm3: 1e-4} }

// LiThin is the lithium thin-film technology (~1e-2 Wh/cm^3).
func LiThin() BatteryTech { return BatteryTech{Name: "Li-thin", DensityWhPerCm3: 1e-2} }

// perByteEnergyJ converts (SRAM access + movement) costs to J/B.
func (m CostModel) perByteEnergyJ(movementNJ float64) float64 {
	return m.SRAMAccessPJPerByte*1e-12 + movementNJ*1e-9
}

// EADRDrainEnergyJ is the energy to drain the platform's caches to NVMM.
// With dirtyOnly, only the average dirty fraction drains (Table VII);
// otherwise the entire hierarchy is assumed dirty (battery provisioning,
// Table IX).
func (m CostModel) EADRDrainEnergyJ(p Platform, dirtyOnly bool) float64 {
	f := 1.0
	if dirtyOnly {
		f = m.DirtyFraction
	}
	return f * (float64(p.L1Bytes)*m.perByteEnergyJ(m.L1ToNVMMNJPerByte) +
		float64(p.L2Bytes)*m.perByteEnergyJ(m.L2ToNVMMNJPerByte) +
		float64(p.L3Bytes)*m.perByteEnergyJ(m.L3ToNVMMNJPerByte))
}

// BBBDrainBytes is the worst-case bbPB payload: every entry of every
// core's buffer full.
func (m CostModel) BBBDrainBytes(p Platform, entries int) uint64 {
	return uint64(p.Cores) * uint64(entries) * uint64(m.LineBytes)
}

// BBBDrainEnergyJ is the energy to drain all bbPBs (worst case, full
// buffers — the paper deliberately compares optimistic eADR with
// pessimistic BBB).
func (m CostModel) BBBDrainEnergyJ(p Platform, entries int) float64 {
	return float64(m.BBBDrainBytes(p, entries)) * m.perByteEnergyJ(m.L1ToNVMMNJPerByte)
}

// EADRDrainTimeS is the time to push the dirty fraction of the caches
// through the platform's NVMM channels (Table VIII).
func (m CostModel) EADRDrainTimeS(p Platform) float64 {
	bytes := m.DirtyFraction * float64(p.TotalCacheBytes())
	return bytes / (float64(p.Channels) * m.ChannelWriteBW)
}

// BBBDrainTimeS is the time to drain full bbPBs (Table VIII).
func (m CostModel) BBBDrainTimeS(p Platform, entries int) float64 {
	return float64(m.BBBDrainBytes(p, entries)) / (float64(p.Channels) * m.ChannelWriteBW)
}

// BatteryVolumeMM3 sizes the energy source holding energyJ joules.
func (m CostModel) BatteryVolumeMM3(energyJ float64, tech BatteryTech) float64 {
	wh := energyJ / 3600
	effDensity := tech.DensityWhPerCm3 / m.ProvisionFactor
	cm3 := wh / effDensity
	return cm3 * 1000
}

// FootprintAreaMM2 converts a battery volume to a die-footprint area
// assuming a cubic battery (§V-A).
func FootprintAreaMM2(volumeMM3 float64) float64 {
	side := math.Cbrt(volumeMM3)
	return side * side
}

// AreaRatioToCore expresses a footprint as a multiple of the reference
// core area.
func (p Platform) AreaRatioToCore(areaMM2 float64) float64 {
	return areaMM2 / p.CoreAreaMM2
}
