package energy

import (
	"math"
	"testing"
)

// TestCertifiedReducesToFullBuffer pins the boundary: a certified bound
// equal to the bbPB capacity reproduces the Table IX full-buffer sizing
// exactly (ratio 1), and a tighter bound shrinks the battery linearly.
func TestCertifiedReducesToFullBuffer(t *testing.T) {
	m := DefaultCostModel()
	const entries = 32
	rows := CertifiedBatterySizes(m, entries, entries)
	if len(rows) != 4 { // 2 platforms × 2 technologies
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if math.Abs(r.FullBufferRatio-1) > 1e-12 {
			t.Errorf("%s/%s: full-capacity certificate ratio = %g, want 1", r.Platform, r.Tech, r.FullBufferRatio)
		}
	}
	for _, p := range Platforms() {
		if got, want := m.CertifiedBBBDrainBytes(p, entries), m.BBBDrainBytes(p, entries); got != want {
			t.Errorf("%s: certified bytes %d != full-buffer bytes %d", p.Name, got, want)
		}
	}

	half := CertifiedBatterySizes(m, entries/2, entries)
	for i, r := range half {
		if math.Abs(r.FullBufferRatio-0.5) > 1e-12 {
			t.Errorf("%s/%s: half-capacity ratio = %g, want 0.5", r.Platform, r.Tech, r.FullBufferRatio)
		}
		if r.DrainEnergyJ >= rows[i].DrainEnergyJ {
			t.Errorf("%s/%s: tighter bound did not shrink drain energy", r.Platform, r.Tech)
		}
	}
}
