package energy

import (
	"math"
	"testing"
	"testing/quick"
)

// close reports whether got is within tol (relative) of want.
func close(got, want, tol float64) bool {
	if want == 0 {
		return got == 0
	}
	return math.Abs(got-want)/math.Abs(want) <= tol
}

func TestTableVPlatforms(t *testing.T) {
	mob, srv := Mobile(), Server()
	if got := mob.TotalCacheBytes(); got != 8960*1024 { // 8.75 MiB
		t.Fatalf("mobile cache = %d bytes, want 8.75 MiB", got)
	}
	wantSrv := uint64(1+32)*1024*1024 + uint64(2*35.75*1024*1024)
	if got := srv.TotalCacheBytes(); got != wantSrv { // 104.5 MiB
		t.Fatalf("server cache = %d bytes, want %d", got, wantSrv)
	}
	if mob.Channels != 2 || srv.Channels != 12 {
		t.Fatal("channel counts wrong")
	}
	if mob.Cores != 6 || srv.Cores != 32 {
		t.Fatal("core counts wrong")
	}
}

// Table VII: eADR 46.5 mJ / 550 mJ; BBB 145 uJ / 775 uJ; ratios 320x / 709x.
func TestTableVIIDrainEnergy(t *testing.T) {
	m := DefaultCostModel()
	rows := DrainCosts(m, 32)
	mob, srv := rows[0], rows[1]
	if !close(mob.EADREnergyJ, 46.5e-3, 0.02) {
		t.Fatalf("mobile eADR energy = %g J, paper 46.5 mJ", mob.EADREnergyJ)
	}
	if !close(mob.BBBEnergyJ, 145e-6, 0.02) {
		t.Fatalf("mobile BBB energy = %g J, paper 145 uJ", mob.BBBEnergyJ)
	}
	if !close(mob.EnergyRatio, 320, 0.03) {
		t.Fatalf("mobile ratio = %g, paper 320x", mob.EnergyRatio)
	}
	if !close(srv.EADREnergyJ, 550e-3, 0.02) {
		t.Fatalf("server eADR energy = %g J, paper 550 mJ", srv.EADREnergyJ)
	}
	if !close(srv.BBBEnergyJ, 775e-6, 0.02) {
		t.Fatalf("server BBB energy = %g J, paper 775 uJ", srv.BBBEnergyJ)
	}
	if !close(srv.EnergyRatio, 709, 0.03) {
		t.Fatalf("server ratio = %g, paper 709x", srv.EnergyRatio)
	}
}

// Table VIII: eADR 0.8 ms / 1.8 ms; BBB 2.6 us / 2.4 us.
func TestTableVIIIDrainTime(t *testing.T) {
	m := DefaultCostModel()
	rows := DrainCosts(m, 32)
	mob, srv := rows[0], rows[1]
	if !close(mob.EADRTimeS, 0.8e-3, 0.15) { // paper rounds to one digit
		t.Fatalf("mobile eADR time = %g s, paper 0.8 ms", mob.EADRTimeS)
	}
	if !close(mob.BBBTimeS, 2.6e-6, 0.05) {
		t.Fatalf("mobile BBB time = %g s, paper 2.6 us", mob.BBBTimeS)
	}
	if !close(srv.EADRTimeS, 1.8e-3, 0.05) {
		t.Fatalf("server eADR time = %g s, paper 1.8 ms", srv.EADRTimeS)
	}
	if !close(srv.BBBTimeS, 2.4e-6, 0.05) {
		t.Fatalf("server BBB time = %g s, paper 2.4 us", srv.BBBTimeS)
	}
	// Two-to-three orders of magnitude improvement, as the abstract claims.
	if mob.TimeRatio < 100 || srv.TimeRatio < 100 {
		t.Fatalf("time ratios %gx/%gx below two orders of magnitude", mob.TimeRatio, srv.TimeRatio)
	}
}

// Table IX: battery volumes and core-area ratios.
func TestTableIXBatterySizes(t *testing.T) {
	m := DefaultCostModel()
	rows := BatterySizes(m, 32)
	byKey := map[string]BatteryRow{}
	for _, r := range rows {
		byKey[r.Platform+"/"+r.Scheme+"/"+r.Tech] = r
	}
	checks := []struct {
		key string
		vol float64
		tol float64
	}{
		{"Mobile Class/eADR/SuperCap", 2.9e3, 0.02},
		{"Mobile Class/eADR/Li-thin", 30, 0.06}, // paper rounds 28.8 -> 30
		{"Mobile Class/BBB/SuperCap", 4.1, 0.03},
		{"Mobile Class/BBB/Li-thin", 0.04, 0.05},
		{"Server Class/eADR/SuperCap", 34e3, 0.02},
		{"Server Class/eADR/Li-thin", 300, 0.15}, // paper rounds 342 -> 300
		{"Server Class/BBB/SuperCap", 21.6, 0.02},
		{"Server Class/BBB/Li-thin", 0.21, 0.03},
	}
	for _, c := range checks {
		r, ok := byKey[c.key]
		if !ok {
			t.Fatalf("missing row %s", c.key)
		}
		if !close(r.VolumeMM3, c.vol, c.tol) {
			t.Errorf("%s volume = %.4g mm^3, paper %.4g", c.key, r.VolumeMM3, c.vol)
		}
	}
	// Area ratios: mobile eADR SuperCap ~77x core, BBB SuperCap ~97%.
	if r := byKey["Mobile Class/eADR/SuperCap"]; !close(r.AreaRatioToCore, 77, 0.05) {
		t.Errorf("mobile eADR SuperCap area ratio = %.1fx, paper ~77x", r.AreaRatioToCore)
	}
	if r := byKey["Mobile Class/BBB/SuperCap"]; !close(r.AreaRatioToCore, 0.972, 0.05) {
		t.Errorf("mobile BBB SuperCap area ratio = %.3f, paper 97.2%%", r.AreaRatioToCore)
	}
	if r := byKey["Server Class/eADR/SuperCap"]; !close(r.AreaRatioToCore, 404, 0.05) {
		t.Errorf("server eADR SuperCap area ratio = %.0fx, paper ~404x", r.AreaRatioToCore)
	}
	if r := byKey["Mobile Class/BBB/Li-thin"]; !close(r.AreaRatioToCore, 0.045, 0.07) {
		t.Errorf("mobile BBB Li-thin area ratio = %.4f, paper 4.5%%", r.AreaRatioToCore)
	}
	if r := byKey["Server Class/eADR/Li-thin"]; !close(r.AreaRatioToCore, 18.7, 0.15) {
		t.Errorf("server eADR Li-thin area ratio = %.1fx, paper 18.7x", r.AreaRatioToCore)
	}
}

// Table X: battery volume vs bbPB entries (spot-check the paper's cells).
func TestTableXBatterySweep(t *testing.T) {
	m := DefaultCostModel()
	rows := BatterySweep(m)
	get := func(tech, platform string, entries int) float64 {
		for _, r := range rows {
			if r.Tech == tech && r.Platform == platform && r.Entries == entries {
				return r.VolumeMM3
			}
		}
		t.Fatalf("missing sweep row %s/%s/%d", tech, platform, entries)
		return 0
	}
	checks := []struct {
		tech, plat string
		entries    int
		want       float64
	}{
		{"SuperCap", "Mobile Class", 1, 0.12},
		{"SuperCap", "Mobile Class", 32, 4.1},
		{"SuperCap", "Mobile Class", 1024, 129.3},
		{"SuperCap", "Server Class", 1, 0.7},
		{"SuperCap", "Server Class", 32, 21.6},
		{"SuperCap", "Server Class", 1024, 689.7},
		{"Li-thin", "Mobile Class", 32, 0.04},
		{"Li-thin", "Server Class", 1024, 6.8},
	}
	for _, c := range checks {
		got := get(c.tech, c.plat, c.entries)
		if !close(got, c.want, 0.06) {
			t.Errorf("%s/%s/%d = %.4g mm^3, paper %.4g", c.tech, c.plat, c.entries, got, c.want)
		}
	}
	// Even at 1024 entries BBB stays 22-49x cheaper than eADR (§V-A).
	sizes := BatterySizes(m, 1024)
	var eadrMob, bbbMob, eadrSrv, bbbSrv float64
	for _, r := range sizes {
		if r.Tech != "SuperCap" {
			continue
		}
		switch r.Platform + "/" + r.Scheme {
		case "Mobile Class/eADR":
			eadrMob = r.VolumeMM3
		case "Mobile Class/BBB":
			bbbMob = r.VolumeMM3
		case "Server Class/eADR":
			eadrSrv = r.VolumeMM3
		case "Server Class/BBB":
			bbbSrv = r.VolumeMM3
		}
	}
	if ratio := eadrMob / bbbMob; !close(ratio, 22, 0.1) {
		t.Errorf("mobile 1024-entry ratio = %.1f, paper ~22x", ratio)
	}
	if ratio := eadrSrv / bbbSrv; !close(ratio, 49, 0.1) {
		t.Errorf("server 1024-entry ratio = %.1f, paper ~49x", ratio)
	}
}

// Battery volume is linear in energy and inversely linear in density.
func TestPropertyBatteryScaling(t *testing.T) {
	m := DefaultCostModel()
	f := func(e uint32, k uint8) bool {
		energy := float64(e%1_000_000) * 1e-6
		mult := float64(k%7) + 1
		v1 := m.BatteryVolumeMM3(energy, SuperCap())
		v2 := m.BatteryVolumeMM3(energy*mult, SuperCap())
		return close(v2, v1*mult, 1e-9) || (energy == 0 && v2 == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// BBB's drain cost is linear in entries and cores.
func TestPropertyBBBDrainLinear(t *testing.T) {
	m := DefaultCostModel()
	p := Mobile()
	e32 := m.BBBDrainEnergyJ(p, 32)
	e64 := m.BBBDrainEnergyJ(p, 64)
	if !close(e64, 2*e32, 1e-9) {
		t.Fatalf("doubling entries did not double energy: %g vs %g", e64, 2*e32)
	}
	p2 := p
	p2.Cores = 12
	if !close(m.BBBDrainEnergyJ(p2, 32), 2*e32, 1e-9) {
		t.Fatal("doubling cores did not double energy")
	}
}

func TestFootprintArea(t *testing.T) {
	// A 1000 mm^3 cube has 100 mm^2 faces.
	if got := FootprintAreaMM2(1000); !close(got, 100, 1e-9) {
		t.Fatalf("FootprintAreaMM2(1000) = %g", got)
	}
}
