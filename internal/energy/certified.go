package energy

// This file feeds pressurelint's static battery-bound certificates into
// the §IV-C sizing model. Table IX provisions BBB's battery for the
// structural worst case — every entry of every core's bbPB full. A
// certified per-core occupancy bound below the capacity shrinks the
// payload the battery must drain, and therefore the battery itself; these
// rows quantify that, next to the full-buffer baseline.

// CertifiedBBBDrainBytes is the drain payload under a certified per-core
// occupancy bound: cores × perCoreLines × line. With perCoreLines equal
// to the bbPB capacity it reduces to BBBDrainBytes.
func (m CostModel) CertifiedBBBDrainBytes(p Platform, perCoreLines int) uint64 {
	return uint64(p.Cores) * uint64(perCoreLines) * uint64(m.LineBytes)
}

// CertifiedBatteryRow is one (platform, technology) battery sizing under
// a certified per-core bound, with the ratio to the full-buffer
// provisioning of Table IX.
type CertifiedBatteryRow struct {
	Platform        string  `json:"platform"`
	Tech            string  `json:"tech"`
	PerCoreLines    int     `json:"perCoreLines"`
	DrainBytes      uint64  `json:"drainBytes"`
	DrainEnergyJ    float64 `json:"drainEnergyJ"`
	DrainTimeS      float64 `json:"drainTimeS"`
	VolumeMM3       float64 `json:"volumeMm3"`
	AreaMM2         float64 `json:"areaMm2"`
	AreaRatioToCore float64 `json:"areaRatioToCore"`
	// FullBufferRatio is certified volume / full-buffer volume at
	// fullEntries: 1.0 when the certificate cannot beat the structural
	// capacity, below it when static analysis proves the buffers never
	// fill.
	FullBufferRatio float64 `json:"fullBufferRatio"`
}

// CertifiedBatterySizes computes the battery sizing for a certified
// per-core line bound on both Table V platforms and both technologies,
// against the full-buffer baseline at fullEntries (the paper's 32).
func CertifiedBatterySizes(m CostModel, perCoreLines, fullEntries int) []CertifiedBatteryRow {
	var rows []CertifiedBatteryRow
	for _, p := range Platforms() {
		bytes := m.CertifiedBBBDrainBytes(p, perCoreLines)
		energyJ := float64(bytes) * m.perByteEnergyJ(m.L1ToNVMMNJPerByte)
		timeS := float64(bytes) / (float64(p.Channels) * m.ChannelWriteBW)
		fullJ := m.BBBDrainEnergyJ(p, fullEntries)
		for _, tech := range []BatteryTech{SuperCap(), LiThin()} {
			vol := m.BatteryVolumeMM3(energyJ, tech)
			area := FootprintAreaMM2(vol)
			rows = append(rows, CertifiedBatteryRow{
				Platform:        p.Name,
				Tech:            tech.Name,
				PerCoreLines:    perCoreLines,
				DrainBytes:      bytes,
				DrainEnergyJ:    energyJ,
				DrainTimeS:      timeS,
				VolumeMM3:       vol,
				AreaMM2:         area,
				AreaRatioToCore: p.AreaRatioToCore(area),
				FullBufferRatio: vol / m.BatteryVolumeMM3(fullJ, tech),
			})
		}
	}
	return rows
}
