package energy

// This file renders the paper's evaluation tables from the cost model, so
// the benchmark harness and the bbbench CLI print exactly the rows the
// paper reports.

// DrainCostRow is one platform's Table VII / VIII comparison.
type DrainCostRow struct {
	Platform    string
	EADREnergyJ float64
	BBBEnergyJ  float64
	EnergyRatio float64 // eADR / BBB ("normalized to BBB")
	EADRTimeS   float64
	BBBTimeS    float64
	TimeRatio   float64
	BBPBEntries int
}

// DrainCosts computes Tables VII and VIII for both platforms at the given
// bbPB size (the paper uses 32).
func DrainCosts(m CostModel, entries int) []DrainCostRow {
	var rows []DrainCostRow
	for _, p := range Platforms() {
		e := m.EADRDrainEnergyJ(p, true)
		b := m.BBBDrainEnergyJ(p, entries)
		et := m.EADRDrainTimeS(p)
		bt := m.BBBDrainTimeS(p, entries)
		rows = append(rows, DrainCostRow{
			Platform:    p.Name,
			EADREnergyJ: e, BBBEnergyJ: b, EnergyRatio: e / b,
			EADRTimeS: et, BBBTimeS: bt, TimeRatio: et / bt,
			BBPBEntries: entries,
		})
	}
	return rows
}

// BatteryRow is one (platform, scheme, technology) cell group of Table IX.
type BatteryRow struct {
	Platform        string
	Scheme          string
	Tech            string
	VolumeMM3       float64
	AreaMM2         float64
	AreaRatioToCore float64
}

// BatterySizes computes Table IX: battery volume and core-area ratio for
// eADR (entire caches assumed dirty) and BBB (full bbPBs) under both
// technologies.
func BatterySizes(m CostModel, entries int) []BatteryRow {
	var rows []BatteryRow
	for _, p := range Platforms() {
		for _, scheme := range []string{"eADR", "BBB"} {
			var energy float64
			if scheme == "eADR" {
				energy = m.EADRDrainEnergyJ(p, false)
			} else {
				energy = m.BBBDrainEnergyJ(p, entries)
			}
			for _, tech := range []BatteryTech{SuperCap(), LiThin()} {
				vol := m.BatteryVolumeMM3(energy, tech)
				area := FootprintAreaMM2(vol)
				rows = append(rows, BatteryRow{
					Platform: p.Name, Scheme: scheme, Tech: tech.Name,
					VolumeMM3: vol, AreaMM2: area,
					AreaRatioToCore: p.AreaRatioToCore(area),
				})
			}
		}
	}
	return rows
}

// BatterySweepRow is one Table X cell: battery volume at a bbPB size.
type BatterySweepRow struct {
	Tech      string
	Platform  string
	Entries   int
	VolumeMM3 float64
}

// TableXEntries is the paper's bbPB-size sweep.
var TableXEntries = []int{1, 4, 16, 32, 64, 256, 1024}

// BatterySweep computes Table X: BBB battery volume vs bbPB entries for
// both platforms and technologies.
func BatterySweep(m CostModel) []BatterySweepRow {
	var rows []BatterySweepRow
	for _, tech := range []BatteryTech{SuperCap(), LiThin()} {
		for _, p := range Platforms() {
			for _, n := range TableXEntries {
				rows = append(rows, BatterySweepRow{
					Tech: tech.Name, Platform: p.Name, Entries: n,
					VolumeMM3: m.BatteryVolumeMM3(m.BBBDrainEnergyJ(p, n), tech),
				})
			}
		}
	}
	return rows
}
