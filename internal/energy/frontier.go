package energy

// Battery-budget frontier helpers: given a battery of a fixed physical
// volume, which bbPB sizes can it safely drain? The frontier campaign
// (RunFrontierCampaign) sweeps bbPB size × drain policy, prices every
// configuration with these functions, and reports the best-performing
// configuration that fits each budget — the §V-A sizing tables turned into
// a design-space query.

// BudgetEnergyJ is the usable energy held by a battery of volumeMM3 cubic
// millimetres of tech, after the model's provisioning derate (the inverse
// of BatteryVolumeMM3).
func (m CostModel) BudgetEnergyJ(tech BatteryTech, volumeMM3 float64) float64 {
	effDensity := tech.DensityWhPerCm3 / m.ProvisionFactor // Wh/cm^3
	wh := (volumeMM3 / 1000) * effDensity
	return wh * 3600
}

// FrontierEnergyFor is the energy a BBB configuration must bank to survive
// a crash: the worst-case drain of entries-deep bbPBs on every core, all
// full. It is deliberately the pessimistic bound (BBBDrainEnergyJ), not
// the average-dirty estimate — a battery sized to the average loses data
// on the worst day.
func (m CostModel) FrontierEnergyFor(p Platform, entries int) float64 {
	return m.BBBDrainEnergyJ(p, entries)
}

// FitsBudget reports whether entries-deep bbPBs can drain on a battery of
// volumeMM3 of tech.
func (m CostModel) FitsBudget(p Platform, entries int, tech BatteryTech, volumeMM3 float64) bool {
	return m.FrontierEnergyFor(p, entries) <= m.BudgetEnergyJ(tech, volumeMM3)
}

// MaxEntriesWithinBudget returns the largest entry count in candidates
// that fits the budget, or 0 when none do. candidates need not be sorted.
func (m CostModel) MaxEntriesWithinBudget(p Platform, candidates []int, tech BatteryTech, volumeMM3 float64) int {
	best := 0
	for _, e := range candidates {
		if e > best && m.FitsBudget(p, e, tech, volumeMM3) {
			best = e
		}
	}
	return best
}
