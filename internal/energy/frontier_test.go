package energy

import "testing"

// TestBudgetEnergyInvertsVolume: BudgetEnergyJ must be the exact inverse
// of BatteryVolumeMM3, so sizing a battery for an energy and asking what
// that battery holds round-trips.
func TestBudgetEnergyInvertsVolume(t *testing.T) {
	m := DefaultCostModel()
	for _, tech := range []BatteryTech{SuperCap(), LiThin()} {
		for _, energyJ := range []float64{1e-4, 0.02, 1.5} {
			vol := m.BatteryVolumeMM3(energyJ, tech)
			back := m.BudgetEnergyJ(tech, vol)
			if diff := back/energyJ - 1; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("%s: %g J -> %g mm^3 -> %g J", tech.Name, energyJ, vol, back)
			}
		}
	}
}

func TestFrontierEnergyScalesWithEntries(t *testing.T) {
	m := DefaultCostModel()
	p := Mobile()
	e32 := m.FrontierEnergyFor(p, 32)
	e64 := m.FrontierEnergyFor(p, 64)
	if e64 <= e32 {
		t.Fatalf("64-entry drain energy %g <= 32-entry %g", e64, e32)
	}
	if ratio := e64 / e32; ratio < 1.99 || ratio > 2.01 {
		t.Errorf("doubling entries scaled energy by %g, want ~2", ratio)
	}
	// The frontier bound is the pessimistic (all-full) drain, matching
	// the battery-provisioning side of the model.
	if e32 != m.BBBDrainEnergyJ(p, 32) {
		t.Error("frontier energy diverged from the worst-case drain bound")
	}
}

// TestFitsBudgetFrontier: a budget sized exactly for 32 entries admits 32
// (and everything smaller) and rejects 64, on both platforms.
func TestFitsBudgetFrontier(t *testing.T) {
	m := DefaultCostModel()
	for _, p := range Platforms() {
		tech := SuperCap()
		budget := m.BatteryVolumeMM3(m.FrontierEnergyFor(p, 32), tech)
		for _, e := range []int{8, 16, 32} {
			if !m.FitsBudget(p, e, tech, budget) {
				t.Errorf("%s: %d entries rejected by a 32-entry budget", p.Name, e)
			}
		}
		if m.FitsBudget(p, 64, tech, budget) {
			t.Errorf("%s: 64 entries fit a 32-entry budget", p.Name)
		}
		if got := m.MaxEntriesWithinBudget(p, []int{64, 8, 32, 16}, tech, budget); got != 32 {
			t.Errorf("%s: MaxEntriesWithinBudget = %d, want 32", p.Name, got)
		}
		if got := m.MaxEntriesWithinBudget(p, []int{64, 128}, tech, budget/4); got != 0 {
			t.Errorf("%s: impossible budget admitted %d entries", p.Name, got)
		}
	}
}
