package bbb

import (
	"io"
	"reflect"
	"testing"

	"bbb/internal/sweep"
)

// kvOptions is the golden service configuration: offered load (the
// schedule's ~720-cycle mean interarrival) sits between the PMEM
// baseline's saturated per-request cost and the battery schemes', so the
// explicit-flush stalls surface as queueing delay rather than vanishing
// into idle time.
func kvOptions() Options {
	return Options{Clients: 4, OpsPerThread: 300, Seed: 1}
}

// TestKVServiceLatencyGolden pins the paper's argument at the service
// level: at equal offered load, the PMEM baseline's flush+fence stalls
// push client-observed latency well above BBB's — the measured margins are
// ~1.7x at p50 and ~1.15x at p99, pinned here with slack. EADR must land
// with BBB (same battery-complete lowering; only capacity effects differ).
func TestKVServiceLatencyGolden(t *testing.T) {
	o := kvOptions()
	pmem := MustRun("kv", SchemePMEM, o)
	bbb := MustRun("kv", SchemeBBB, o)
	eadr := MustRun("kv", SchemeEADR, o)

	for _, r := range []Result{pmem, bbb, eadr} {
		if r.Metrics == nil || r.Metrics.Hist("kv.lat") == nil {
			t.Fatal("service run missing kv.lat histogram")
		}
		if got, want := r.Metrics.Hist("kv.lat").Count(), uint64(o.Clients*o.OpsPerThread); got != want {
			t.Fatalf("kv.lat holds %d samples, want %d", got, want)
		}
	}

	p50 := func(r Result) float64 { return r.Metrics.Hist("kv.lat").P50() }
	p99 := func(r Result) float64 { return r.Metrics.Hist("kv.lat").P99() }
	if r := p50(pmem) / p50(bbb); r < 1.3 {
		t.Errorf("p50 ratio pmem/bbb = %.2f, want >= 1.3 (pmem %.0f, bbb %.0f cycles)", r, p50(pmem), p50(bbb))
	}
	if r := p99(pmem) / p99(bbb); r < 1.1 {
		t.Errorf("p99 ratio pmem/bbb = %.2f, want >= 1.1 (pmem %.0f, bbb %.0f cycles)", r, p99(pmem), p99(bbb))
	}
	if r := p99(eadr) / p99(bbb); r < 0.8 || r > 1.25 {
		t.Errorf("p99 ratio eadr/bbb = %.2f, want ~1 (both battery-complete)", r)
	}
}

// TestKVServiceStreamingCarriesServiceMetrics pins that the tracing
// harnesses fold service metrics the same way Run does: a kv run through
// RunStreaming (the bbbkv -trace-out path) must surface the kv.* histograms
// and the kv.lat.win timeline, identical to the plain run's.
func TestKVServiceStreamingCarriesServiceMetrics(t *testing.T) {
	o := Options{Clients: 2, OpsPerThread: 60, Seed: 1}
	plain := MustRun("kv", SchemeBBB, o)
	streamed, err := RunStreaming("kv", SchemeBBB, o, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []Result{plain, streamed} {
		if r.Metrics == nil || r.Metrics.Hist("kv.lat") == nil {
			t.Fatal("run missing kv.lat histogram")
		}
		if r.Metrics.Windowed("kv.lat.win") == nil {
			t.Fatal("run missing kv.lat.win windowed series")
		}
	}
	if a, b := plain.Metrics.Hist("kv.lat"), streamed.Metrics.Hist("kv.lat"); !reflect.DeepEqual(a, b) {
		t.Fatalf("streamed kv.lat differs from plain run's:\n%+v\n%+v", a, b)
	}
	if a, b := plain.Metrics.Windowed("kv.lat.win").Snapshots(), streamed.Metrics.Windowed("kv.lat.win").Snapshots(); !reflect.DeepEqual(a, b) {
		t.Fatalf("streamed kv.lat.win differs from plain run's:\n%+v\n%+v", a, b)
	}
}

// TestKVServiceSweepWidthDeterministic pins that the service tier is a
// pure function of its parameters under parallel fan-out: the same
// (workload, scheme) matrix run serially and at width 4 must produce
// deep-equal Results, histograms included.
func TestKVServiceSweepWidthDeterministic(t *testing.T) {
	o := Options{Clients: 3, OpsPerThread: 80, Seed: 7}
	combos := []struct {
		w string
		s Scheme
	}{
		{"kv", SchemePMEM}, {"kv", SchemeBBB}, {"kv", SchemeBEP},
		{"kv/uniform", SchemeBBB},
	}
	run := func(width int) []Result {
		return sweep.Map(width, len(combos), func(i int) Result {
			return MustRun(combos[i].w, combos[i].s, o)
		})
	}
	if a, b := run(1), run(4); !reflect.DeepEqual(a, b) {
		t.Fatal("service results differ between sweep widths 1 and 4")
	}
}
