package bbb

import (
	"strings"
	"testing"

	"bbb/internal/obs"
)

func tinyFrontier(t *testing.T, dir string, parallel, maxPoints int) FrontierResult {
	t.Helper()
	l, err := obs.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunFrontierCampaign(
		Options{Threads: 2, OpsPerThread: 60, Parallelism: parallel},
		FrontierConfig{
			Entries:    []int{8, 32},
			Thresholds: []float64{0.5, 0.75},
			BudgetsMM3: []float64{0.1, 2, 50},
			MaxPoints:  maxPoints,
			Ledger:     l,
		})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFrontierCampaignKillAndResume drives the whole stack end to end: a
// real simulated sweep interrupted at 50%, resumed under a different
// worker count, must reproduce the uninterrupted campaign's report byte
// for byte — run ID, per-point results, frontier rows and summary digest.
func TestFrontierCampaignKillAndResume(t *testing.T) {
	ref := tinyFrontier(t, t.TempDir(), 1, 0)
	if !ref.Complete || len(ref.Points) != 4 || len(ref.Rows) != 3 {
		t.Fatalf("reference campaign: %+v", ref)
	}

	dir := t.TempDir()
	half := tinyFrontier(t, dir, 2, 2)
	if half.Complete || half.Fresh != 2 {
		t.Fatalf("interrupted campaign: %+v", half)
	}
	if half.RunID != ref.RunID {
		t.Fatalf("run ID depends on worker count or MaxPoints: %s vs %s", half.RunID, ref.RunID)
	}
	resumed := tinyFrontier(t, dir, 3, 0)
	if !resumed.Complete || resumed.Restored != 2 || resumed.Fresh != 2 {
		t.Fatalf("resumed campaign: %+v", resumed)
	}
	if resumed.VerifiedIx < 0 {
		t.Error("resume did not re-verify an overlap point")
	}
	if got, want := resumed.Report(), ref.Report(); got != want {
		t.Errorf("resumed report diverged from uninterrupted:\n--- resumed\n%s--- reference\n%s", got, want)
	}
	if resumed.SummarySHA != ref.SummarySHA || resumed.SummarySHA == "" {
		t.Errorf("summary digest: %s vs %s", resumed.SummarySHA, ref.SummarySHA)
	}
}

func TestFrontierReportShape(t *testing.T) {
	res := tinyFrontier(t, t.TempDir(), 2, 0)
	rep := res.Report()
	for _, want := range []string{
		"frontier campaign: workload=hashmap",
		"battery-budget frontier",
		"summary sha256 " + res.SummarySHA,
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	// The 0.1 mm^3 budget cannot drain even 8-entry buffers on the mobile
	// platform; the 50 mm^3 budget fits everything swept.
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if first.MaxEntries != 0 || first.Best != nil {
		t.Errorf("0.1mm^3 row admitted entries: %+v", first)
	}
	if last.MaxEntries != 32 || last.Best == nil {
		t.Errorf("50mm^3 row: %+v", last)
	}
	// Larger budgets can only improve the best achievable cycles.
	var prev *FrontierPoint
	for _, row := range res.Rows {
		if row.Best == nil {
			continue
		}
		if prev != nil && row.Best.Cycles > prev.Cycles {
			t.Errorf("frontier not monotone: %d cycles at %.1fmm^3 after %d", row.Best.Cycles, row.BudgetMM3, prev.Cycles)
		}
		prev = row.Best
	}
}

func TestFrontierRejectsBadConfig(t *testing.T) {
	l, err := obs.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunFrontierCampaign(Options{}, FrontierConfig{Tech: "plutonium", Ledger: l}); err == nil {
		t.Error("unknown tech accepted")
	}
	if _, err := RunFrontierCampaign(Options{}, FrontierConfig{Platform: "laptop", Ledger: l}); err == nil {
		t.Error("unknown platform accepted")
	}
	if _, err := RunFrontierCampaign(Options{}, FrontierConfig{Workload: "nope", Ledger: l}); err == nil {
		t.Error("unknown workload accepted")
	}
}
