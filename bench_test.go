package bbb

// The benchmark harness regenerates every table and figure of the paper's
// evaluation section (run `go test -bench=. -benchmem`); each benchmark
// reports the paper's metric as testing.B custom metrics, and the bbbench
// CLI prints the same data as formatted tables. EXPERIMENTS.md records
// paper-vs-measured values.

import (
	"runtime"
	"strconv"
	"testing"

	"bbb/internal/energy"
	"bbb/internal/workload"
)

// benchOptions keeps benchmark iterations affordable while staying in the
// cache-pressure regime of the paper's full-size runs.
func benchOptions() Options { return scaled(200) }

// BenchmarkTable4PStores measures the store mix of every Table IV workload.
func BenchmarkTable4PStores(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := RunTable4(benchOptions())
		for _, r := range rows {
			b.ReportMetric(r.MeasuredPct, r.Workload+"_%Pstores")
		}
	}
}

// BenchmarkTable7DrainEnergy computes the eADR-vs-BBB draining energy.
func BenchmarkTable7DrainEnergy(b *testing.B) {
	m := energy.DefaultCostModel()
	var rows []energy.DrainCostRow
	for i := 0; i < b.N; i++ {
		rows = energy.DrainCosts(m, 32)
	}
	b.ReportMetric(rows[0].EADREnergyJ*1e3, "mobile_eADR_mJ")
	b.ReportMetric(rows[0].BBBEnergyJ*1e6, "mobile_BBB_uJ")
	b.ReportMetric(rows[0].EnergyRatio, "mobile_ratio_x")
	b.ReportMetric(rows[1].EADREnergyJ*1e3, "server_eADR_mJ")
	b.ReportMetric(rows[1].BBBEnergyJ*1e6, "server_BBB_uJ")
	b.ReportMetric(rows[1].EnergyRatio, "server_ratio_x")
}

// BenchmarkTable8DrainTime computes the eADR-vs-BBB draining time.
func BenchmarkTable8DrainTime(b *testing.B) {
	m := energy.DefaultCostModel()
	var rows []energy.DrainCostRow
	for i := 0; i < b.N; i++ {
		rows = energy.DrainCosts(m, 32)
	}
	b.ReportMetric(rows[0].EADRTimeS*1e3, "mobile_eADR_ms")
	b.ReportMetric(rows[0].BBBTimeS*1e6, "mobile_BBB_us")
	b.ReportMetric(rows[1].EADRTimeS*1e3, "server_eADR_ms")
	b.ReportMetric(rows[1].BBBTimeS*1e6, "server_BBB_us")
	b.ReportMetric(rows[0].TimeRatio, "mobile_ratio_x")
	b.ReportMetric(rows[1].TimeRatio, "server_ratio_x")
}

// BenchmarkTable9BatterySize computes the Table IX battery volumes.
func BenchmarkTable9BatterySize(b *testing.B) {
	m := energy.DefaultCostModel()
	var rows []energy.BatteryRow
	for i := 0; i < b.N; i++ {
		rows = energy.BatterySizes(m, 32)
	}
	for _, r := range rows {
		name := r.Platform[:6] + "_" + r.Scheme + "_" + r.Tech + "_mm3"
		b.ReportMetric(r.VolumeMM3, name)
	}
}

// BenchmarkTable10BatterySweep computes Table X's bbPB-size sweep.
func BenchmarkTable10BatterySweep(b *testing.B) {
	m := energy.DefaultCostModel()
	var rows []energy.BatterySweepRow
	for i := 0; i < b.N; i++ {
		rows = energy.BatterySweep(m)
	}
	for _, r := range rows {
		if r.Tech == "SuperCap" && (r.Entries == 32 || r.Entries == 1024) {
			b.ReportMetric(r.VolumeMM3, r.Platform[:6]+"_e"+strconv.Itoa(r.Entries)+"_mm3")
		}
	}
}

// BenchmarkFig7aExecutionTime reruns Figure 7(a): execution time of BBB-32
// and BBB-1024 normalized to eADR, per workload.
func BenchmarkFig7aExecutionTime(b *testing.B) {
	var f Fig7Result
	for i := 0; i < b.N; i++ {
		f = RunFig7(benchOptions())
	}
	for _, r := range f.Rows {
		b.ReportMetric(r.ExecBBB32, r.Workload+"_exec32_x")
	}
	b.ReportMetric(100*f.MeanExecOverheadBBB32, "mean_overhead_pct")
	b.ReportMetric(100*f.WorstExecOverheadBBB32, "worst_overhead_pct")
}

// BenchmarkFig7bNVMMWrites reruns Figure 7(b): NVMM writes normalized to
// eADR.
func BenchmarkFig7bNVMMWrites(b *testing.B) {
	var f Fig7Result
	for i := 0; i < b.N; i++ {
		f = RunFig7(benchOptions())
	}
	for _, r := range f.Rows {
		b.ReportMetric(r.WritesBBB32, r.Workload+"_writes32_x")
	}
	b.ReportMetric(100*f.MeanWriteOverheadBBB32, "mean32_overhead_pct")
	b.ReportMetric(100*f.MeanWriteOverheadBBB1024, "mean1024_overhead_pct")
}

// BenchmarkFig7ProcSideWrites reruns the §V-C processor-side comparison
// (the paper reports ~2.8x more NVMM writes than eADR).
func BenchmarkFig7ProcSideWrites(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		ratio = ProcSideWriteRatio(benchOptions())
	}
	b.ReportMetric(ratio, "procside_writes_x")
}

// BenchmarkFig8Sensitivity reruns Figure 8: bbPB-size sweep, geomean
// rejections / exec time / drains normalized to the 1-entry bbPB.
func BenchmarkFig8Sensitivity(b *testing.B) {
	sizes := []int{1, 4, 16, 32, 128, 1024}
	var pts []Fig8Point
	for i := 0; i < b.N; i++ {
		pts = RunFig8(scaled(150), sizes)
	}
	for _, p := range pts {
		b.ReportMetric(p.Rejections, "rej_e"+strconv.Itoa(p.Entries)+"_x")
		b.ReportMetric(p.ExecTime, "exec_e"+strconv.Itoa(p.Entries)+"_x")
		b.ReportMetric(p.Drains, "drains_e"+strconv.Itoa(p.Entries)+"_x")
	}
}

// BenchmarkAblationWPQDepth sweeps the NVMM write-pending-queue depth,
// showing where controller backpressure starts reaching the cores.
func BenchmarkAblationWPQDepth(b *testing.B) {
	var pts []WPQDepthPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = RunWPQDepthAblation("mutateNC", benchOptions(), nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		b.ReportMetric(float64(p.Cycles), "cycles_wpq"+strconv.Itoa(p.Entries))
		b.ReportMetric(float64(p.FullStalls), "stalls_wpq"+strconv.Itoa(p.Entries))
	}
}

// BenchmarkAblationStorePrefetch compares runs with and without RFO
// prefetching of buffered stores' lines (the MLP knob).
func BenchmarkAblationStorePrefetch(b *testing.B) {
	var off, on Result
	for i := 0; i < b.N; i++ {
		o := benchOptions()
		off = MustRun("rtree", SchemeBBB, o)
		o.StorePrefetch = true
		on = MustRun("rtree", SchemeBBB, o)
	}
	b.ReportMetric(float64(off.Cycles), "cycles_noprefetch")
	b.ReportMetric(float64(on.Cycles), "cycles_prefetch")
	b.ReportMetric(float64(off.Cycles)/float64(on.Cycles), "speedup_x")
}

// BenchmarkAblationRelaxedConsistency compares in-order vs relaxed L1D
// commit under BBB (§III-C): durability is identical (tested elsewhere);
// this reports the performance effect.
func BenchmarkAblationRelaxedConsistency(b *testing.B) {
	var tso, relaxed Result
	for i := 0; i < b.N; i++ {
		o := benchOptions()
		tso = MustRun("rtree", SchemeBBB, o)
		o.RelaxedConsistency = true
		relaxed = MustRun("rtree", SchemeBBB, o)
	}
	b.ReportMetric(float64(tso.Cycles), "cycles_tso")
	b.ReportMetric(float64(relaxed.Cycles), "cycles_relaxed")
}

// BenchmarkAblationDrainThreshold sweeps the §III-F drain threshold.
func BenchmarkAblationDrainThreshold(b *testing.B) {
	var pts []DrainThresholdPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = RunDrainThresholdAblation("hashmap", benchOptions(), nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		b.ReportMetric(float64(p.NVMMWrites), "writes_t"+strconv.Itoa(int(p.Threshold*100)))
	}
}

// BenchmarkSchemesPerWorkload runs each Table IV workload under each scheme
// — the raw-material sweep behind Figure 7, exposed per combination.
func BenchmarkSchemesPerWorkload(b *testing.B) {
	for _, w := range workload.Registry() {
		for _, s := range []Scheme{SchemeEADR, SchemeBBB, SchemeBBBProc, SchemePMEM} {
			w, s := w, s
			b.Run(w.Name()+"/"+s.String(), func(b *testing.B) {
				var r Result
				for i := 0; i < b.N; i++ {
					r = MustRun(w.Name(), s, benchOptions())
				}
				b.ReportMetric(float64(r.Cycles), "cycles")
				b.ReportMetric(float64(r.NVMMWrites), "nvmm_writes")
				b.ReportMetric(float64(r.Rejections), "rejections")
			})
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed (simulated
// stores per wall second) and allocation pressure per run — engineering
// metrics, not paper figures. bench-json tracks both across commits. This
// is the goroutine path; BenchmarkIRThroughput is the same run compiled.
func BenchmarkSimulatorThroughput(b *testing.B) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	var stores uint64
	for i := 0; i < b.N; i++ {
		r := MustRun("mutateNC", SchemeBBB, benchOptions())
		stores += r.Stores
	}
	runtime.ReadMemStats(&after)
	b.ReportMetric(float64(stores)/b.Elapsed().Seconds(), "sim_stores/s")
	b.ReportMetric(float64(after.Mallocs-before.Mallocs)/float64(b.N), "allocs/op")
}

// BenchmarkIRThroughput is BenchmarkSimulatorThroughput over the compiled-
// IR path — the same workload, scheme and scale, with the per-access
// goroutine handoff replaced by the inline interpreter. The ISSUE 8
// acceptance bar is >= 3x the BENCH_0.json sim_stores/s baseline (~300k);
// `make ir-equiv` separately guarantees the two paths' Results are
// byte-identical, so this speedup is free of modeling drift.
func BenchmarkIRThroughput(b *testing.B) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	var stores uint64
	for i := 0; i < b.N; i++ {
		r := MustRunCompiled("mutateNC", SchemeBBB, benchOptions())
		stores += r.Stores
	}
	runtime.ReadMemStats(&after)
	b.ReportMetric(float64(stores)/b.Elapsed().Seconds(), "sim_stores/s")
	b.ReportMetric(float64(after.Mallocs-before.Mallocs)/float64(b.N), "allocs/op")
}
