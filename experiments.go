package bbb

import (
	"fmt"

	"bbb/internal/persistency"
	"bbb/internal/stats"
	"bbb/internal/workload"
)

// persistencySchemes returns every implemented scheme, Table I order first.
func persistencySchemes() []Scheme { return persistency.Schemes() }

// Fig7Row is one workload's bars in Figures 7(a) and 7(b): execution time
// and NVMM writes for BBB-32 and BBB-1024, normalized to eADR (= 1.0).
type Fig7Row struct {
	Workload string
	// ExecTime[scheme] and Writes[scheme] are normalized to eADR.
	ExecBBB32     float64
	ExecBBB1024   float64
	WritesBBB32   float64
	WritesBBB1024 float64
	// Raw eADR values, for context.
	EADRCycles uint64
	EADRWrites uint64
}

// Fig7Result carries the whole figure plus its summary statistics.
type Fig7Result struct {
	Rows []Fig7Row
	// The paper's headline numbers: ~1% mean slowdown / 2.8% worst for
	// BBB-32; +4.9% mean writes.
	MeanExecOverheadBBB32    float64 // geomean(exec)-1
	WorstExecOverheadBBB32   float64
	MeanWriteOverheadBBB32   float64
	MeanWriteOverheadBBB1024 float64
}

// RunFig7 regenerates Figure 7: every Table IV workload under eADR, BBB-32
// and BBB-1024.
func RunFig7(o Options) Fig7Result {
	var out Fig7Result
	var execs, writes32, writes1024 []float64
	for _, w := range workload.Registry() {
		eadr := MustRun(w.Name(), SchemeEADR, o)

		o32 := o
		o32.BBPBEntries = 32
		b32 := MustRun(w.Name(), SchemeBBB, o32)

		o1024 := o
		o1024.BBPBEntries = 1024
		b1024 := MustRun(w.Name(), SchemeBBB, o1024)

		row := Fig7Row{
			Workload:      w.Name(),
			ExecBBB32:     stats.Ratio(float64(b32.Cycles), float64(eadr.Cycles)),
			ExecBBB1024:   stats.Ratio(float64(b1024.Cycles), float64(eadr.Cycles)),
			WritesBBB32:   stats.Ratio(float64(b32.NVMMWrites), float64(eadr.NVMMWrites)),
			WritesBBB1024: stats.Ratio(float64(b1024.NVMMWrites), float64(eadr.NVMMWrites)),
			EADRCycles:    eadr.Cycles,
			EADRWrites:    eadr.NVMMWrites,
		}
		out.Rows = append(out.Rows, row)
		execs = append(execs, row.ExecBBB32)
		writes32 = append(writes32, row.WritesBBB32)
		writes1024 = append(writes1024, row.WritesBBB1024)
	}
	out.MeanExecOverheadBBB32 = stats.Geomean(execs) - 1
	out.WorstExecOverheadBBB32 = stats.Max(execs) - 1
	out.MeanWriteOverheadBBB32 = stats.Geomean(writes32) - 1
	out.MeanWriteOverheadBBB1024 = stats.Geomean(writes1024) - 1
	return out
}

// ProcSideWriteRatio reproduces §V-C's processor-side comparison: the mean
// NVMM-write ratio of the processor-side organization to eADR (the paper
// reports ~2.8x).
func ProcSideWriteRatio(o Options) float64 {
	var ratios []float64
	for _, w := range workload.Registry() {
		eadr := MustRun(w.Name(), SchemeEADR, o)
		proc := MustRun(w.Name(), SchemeBBBProc, o)
		ratios = append(ratios, stats.Ratio(float64(proc.NVMMWrites), float64(eadr.NVMMWrites)))
	}
	return stats.Geomean(ratios)
}

// Fig8Point is one bbPB size in the Figure 8 sensitivity sweep: workload
// geomeans normalized to the 1-entry configuration.
type Fig8Point struct {
	Entries    int
	Rejections float64 // (a) persist rejections due to full bbPB
	ExecTime   float64 // (b) execution time
	Drains     float64 // (c) bbPB drains to NVMM
}

// Fig8Sizes is the paper's sweep.
var Fig8Sizes = []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// RunFig8 regenerates Figure 8: geomean impact of bbPB size on rejections,
// execution time, and drains, normalized to a 1-entry bbPB.
func RunFig8(o Options, sizes []int) []Fig8Point {
	if len(sizes) == 0 {
		sizes = Fig8Sizes
	}
	reg := workload.Registry()
	type raw struct{ rej, exec, drains []float64 }
	perSize := make([]raw, len(sizes))
	for _, w := range reg {
		for i, n := range sizes {
			on := o
			on.BBPBEntries = n
			r := MustRun(w.Name(), SchemeBBB, on)
			// Geomean needs positive values; +1 shifts zero counts.
			perSize[i].rej = append(perSize[i].rej, float64(r.Rejections)+1)
			perSize[i].exec = append(perSize[i].exec, float64(r.Cycles))
			perSize[i].drains = append(perSize[i].drains, float64(r.Drains)+1)
		}
	}
	base := perSize[0]
	baseRej, baseExec, baseDrains := stats.Geomean(base.rej), stats.Geomean(base.exec), stats.Geomean(base.drains)
	var out []Fig8Point
	for i, n := range sizes {
		out = append(out, Fig8Point{
			Entries:    n,
			Rejections: stats.Geomean(perSize[i].rej) / baseRej,
			ExecTime:   stats.Geomean(perSize[i].exec) / baseExec,
			Drains:     stats.Geomean(perSize[i].drains) / baseDrains,
		})
	}
	return out
}

// PStoreRow is one Table IV row: measured persistent-store fraction.
type PStoreRow struct {
	Workload    string
	Description string
	MeasuredPct float64
	PaperPct    float64
}

// RunTable4 measures the store mix of every workload (Table IV's %P-stores
// column) on the eADR machine, where no persistency mechanism perturbs it.
func RunTable4(o Options) []PStoreRow {
	var rows []PStoreRow
	for _, w := range workload.Registry() {
		r := MustRun(w.Name(), SchemeEADR, o)
		rows = append(rows, PStoreRow{
			Workload:    w.Name(),
			Description: w.Description(),
			MeasuredPct: 100 * float64(r.PersistingStores) / float64(r.Stores),
			PaperPct:    w.PaperPStores(),
		})
	}
	return rows
}

// SeedSweep is the multi-seed robustness summary for one (workload,
// scheme) normalized metric: the paper reports single runs; a
// production-quality harness should show how stable those numbers are
// across workload randomness.
type SeedSweep struct {
	Workload string
	// ExecRatio and WriteRatio are BBB-32 normalized to eADR, summarized
	// over seeds.
	ExecMean, ExecStdDev   float64
	WriteMean, WriteStdDev float64
	Seeds                  int
}

// RunSeedSweep reruns the Fig. 7 comparison for one workload across seeds.
func RunSeedSweep(workloadName string, o Options, seeds []int64) (SeedSweep, error) {
	if len(seeds) == 0 {
		seeds = []int64{1, 2, 3, 4, 5}
	}
	var exec, writes stats.Distribution
	for _, seed := range seeds {
		os := o
		os.Seed = seed
		eadr, err := Run(workloadName, SchemeEADR, os)
		if err != nil {
			return SeedSweep{}, err
		}
		bbb, err := Run(workloadName, SchemeBBB, os)
		if err != nil {
			return SeedSweep{}, err
		}
		exec.Observe(stats.Ratio(float64(bbb.Cycles), float64(eadr.Cycles)))
		writes.Observe(stats.Ratio(float64(bbb.NVMMWrites), float64(eadr.NVMMWrites)))
	}
	return SeedSweep{
		Workload:    workloadName,
		ExecMean:    exec.Mean(),
		ExecStdDev:  exec.StdDev(),
		WriteMean:   writes.Mean(),
		WriteStdDev: writes.StdDev(),
		Seeds:       len(seeds),
	}, nil
}

// SchemeRow is one (workload, scheme) cell of the extended comparison that
// also covers the BEP and NVCache designs the paper discusses
// qualitatively.
type SchemeRow struct {
	Workload   string
	Scheme     Scheme
	Cycles     uint64
	NVMMWrites uint64
	Rejections uint64
	// WearMax / WearMean describe the per-line NVMM write distribution
	// (endurance: the hottest line wears out first).
	WearMax  uint64
	WearMean float64
}

// RunSchemeComparison sweeps one workload over every scheme with wear
// tracking on — the endurance ablation behind the paper's §V-C argument
// that memory-side coalescing and skipped writebacks protect NVMM lifetime.
func RunSchemeComparison(workloadName string, o Options) ([]SchemeRow, error) {
	o.TrackWear = true
	var rows []SchemeRow
	for _, s := range persistencySchemes() {
		r, err := Run(workloadName, s, o)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SchemeRow{
			Workload:   workloadName,
			Scheme:     s,
			Cycles:     r.Cycles,
			NVMMWrites: r.NVMMWrites,
			Rejections: r.Rejections,
			WearMax:    r.Wear.MaxWrites,
			WearMean:   r.Wear.MeanWrites,
		})
	}
	return rows, nil
}

// WPQDepthPoint is one cell of the write-pending-queue depth ablation: the
// WPQ is the ADR persistence domain below the bbPBs, so its depth bounds
// how much persist traffic the controller can absorb before backpressure
// reaches the buffers and then the cores.
type WPQDepthPoint struct {
	Entries    int
	Cycles     uint64
	NVMMWrites uint64
	FullStalls uint64
}

// RunWPQDepthAblation sweeps the NVMM WPQ depth on one workload under BBB.
func RunWPQDepthAblation(workloadName string, o Options, depths []int) ([]WPQDepthPoint, error) {
	if len(depths) == 0 {
		depths = []int{4, 8, 16, 32, 64}
	}
	w, err := workload.ByName(workloadName)
	if err != nil {
		return nil, err
	}
	var out []WPQDepthPoint
	for _, d := range depths {
		cfg := o.sysConfig(SchemeBBB)
		cfg.NVMM.WPQEntries = d
		r := workload.Run(w, SchemeBBB, cfg, o.params())
		out = append(out, WPQDepthPoint{
			Entries:    d,
			Cycles:     r.Cycles,
			NVMMWrites: r.NVMMWrites,
			FullStalls: r.Counters.Get("nvmm.wpq_full_stalls"),
		})
	}
	return out, nil
}

// DrainThresholdPoint is one cell of the drain-threshold ablation (§III-F:
// "we found 75% threshold to work well for 32-entry bbPB").
type DrainThresholdPoint struct {
	Threshold  float64
	Cycles     uint64
	NVMMWrites uint64
	Rejections uint64
}

// RunDrainThresholdAblation sweeps the bbPB drain threshold on one
// workload, holding everything else at defaults.
func RunDrainThresholdAblation(workloadName string, o Options, thresholds []float64) ([]DrainThresholdPoint, error) {
	if len(thresholds) == 0 {
		thresholds = []float64{0.125, 0.25, 0.5, 0.75, 0.9}
	}
	var out []DrainThresholdPoint
	for _, th := range thresholds {
		ot := o
		ot.DrainThreshold = th
		r, err := Run(workloadName, SchemeBBB, ot)
		if err != nil {
			return nil, fmt.Errorf("threshold %.2f: %w", th, err)
		}
		out = append(out, DrainThresholdPoint{
			Threshold: th, Cycles: r.Cycles, NVMMWrites: r.NVMMWrites, Rejections: r.Rejections,
		})
	}
	return out, nil
}
