package bbb

import (
	"fmt"

	"bbb/internal/persistency"
	"bbb/internal/stats"
	"bbb/internal/sweep"
	"bbb/internal/workload"
)

// persistencySchemes returns every implemented scheme, Table I order first.
func persistencySchemes() []Scheme { return persistency.Schemes() }

// Fig7Row is one workload's bars in Figures 7(a) and 7(b): execution time
// and NVMM writes for BBB-32 and BBB-1024, normalized to eADR (= 1.0).
type Fig7Row struct {
	Workload string
	// ExecTime[scheme] and Writes[scheme] are normalized to eADR.
	ExecBBB32     float64
	ExecBBB1024   float64
	WritesBBB32   float64
	WritesBBB1024 float64
	// Raw eADR values, for context.
	EADRCycles uint64
	EADRWrites uint64
}

// Fig7Result carries the whole figure plus its summary statistics.
type Fig7Result struct {
	Rows []Fig7Row
	// The paper's headline numbers: ~1% mean slowdown / 2.8% worst for
	// BBB-32; +4.9% mean writes.
	MeanExecOverheadBBB32    float64 // geomean(exec)-1
	WorstExecOverheadBBB32   float64
	MeanWriteOverheadBBB32   float64
	MeanWriteOverheadBBB1024 float64
}

// RunFig7 regenerates Figure 7: every Table IV workload under eADR, BBB-32
// and BBB-1024. The 3 x |workloads| independent simulations fan out over
// Options.Parallelism workers; rows are assembled in the paper's order.
func RunFig7(o Options) Fig7Result {
	reg := workload.Registry()
	o32 := o
	o32.BBPBEntries = 32
	o1024 := o
	o1024.BBPBEntries = 1024
	type trio struct{ eadr, b32, b1024 Result }
	res := make([]trio, len(reg))
	sweep.Run(o.workers(), 3*len(reg), func(i int) {
		name := reg[i/3].Name()
		switch i % 3 {
		case 0:
			res[i/3].eadr = MustRun(name, SchemeEADR, o)
		case 1:
			res[i/3].b32 = MustRun(name, SchemeBBB, o32)
		case 2:
			res[i/3].b1024 = MustRun(name, SchemeBBB, o1024)
		}
	})

	var out Fig7Result
	var execs, writes32, writes1024 []float64
	for wi, w := range reg {
		eadr, b32, b1024 := res[wi].eadr, res[wi].b32, res[wi].b1024

		row := Fig7Row{
			Workload:      w.Name(),
			ExecBBB32:     stats.Ratio(float64(b32.Cycles), float64(eadr.Cycles)),
			ExecBBB1024:   stats.Ratio(float64(b1024.Cycles), float64(eadr.Cycles)),
			WritesBBB32:   stats.Ratio(float64(b32.NVMMWrites), float64(eadr.NVMMWrites)),
			WritesBBB1024: stats.Ratio(float64(b1024.NVMMWrites), float64(eadr.NVMMWrites)),
			EADRCycles:    eadr.Cycles,
			EADRWrites:    eadr.NVMMWrites,
		}
		out.Rows = append(out.Rows, row)
		execs = append(execs, row.ExecBBB32)
		writes32 = append(writes32, row.WritesBBB32)
		writes1024 = append(writes1024, row.WritesBBB1024)
	}
	out.MeanExecOverheadBBB32 = stats.Geomean(execs) - 1
	out.WorstExecOverheadBBB32 = stats.Max(execs) - 1
	out.MeanWriteOverheadBBB32 = stats.Geomean(writes32) - 1
	out.MeanWriteOverheadBBB1024 = stats.Geomean(writes1024) - 1
	return out
}

// ProcSideWriteRatio reproduces §V-C's processor-side comparison: the mean
// NVMM-write ratio of the processor-side organization to eADR (the paper
// reports ~2.8x).
func ProcSideWriteRatio(o Options) float64 {
	reg := workload.Registry()
	type pair struct{ eadr, proc Result }
	res := make([]pair, len(reg))
	sweep.Run(o.workers(), 2*len(reg), func(i int) {
		name := reg[i/2].Name()
		if i%2 == 0 {
			res[i/2].eadr = MustRun(name, SchemeEADR, o)
		} else {
			res[i/2].proc = MustRun(name, SchemeBBBProc, o)
		}
	})
	var ratios []float64
	for wi := range reg {
		ratios = append(ratios, stats.Ratio(float64(res[wi].proc.NVMMWrites), float64(res[wi].eadr.NVMMWrites)))
	}
	return stats.Geomean(ratios)
}

// Fig8Point is one bbPB size in the Figure 8 sensitivity sweep: workload
// geomeans normalized to the 1-entry configuration.
type Fig8Point struct {
	Entries    int
	Rejections float64 // (a) persist rejections due to full bbPB
	ExecTime   float64 // (b) execution time
	Drains     float64 // (c) bbPB drains to NVMM
}

// Fig8Sizes is the paper's sweep.
var Fig8Sizes = []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// RunFig8 regenerates Figure 8: geomean impact of bbPB size on rejections,
// execution time, and drains, normalized to a 1-entry bbPB.
func RunFig8(o Options, sizes []int) []Fig8Point {
	if len(sizes) == 0 {
		sizes = Fig8Sizes
	}
	reg := workload.Registry()
	// One independent simulation per (workload, size) cell, fanned out over
	// Options.Parallelism workers into index-addressed slots.
	cells := sweep.Map(o.workers(), len(reg)*len(sizes), func(c int) Result {
		on := o
		on.BBPBEntries = sizes[c%len(sizes)]
		return MustRun(reg[c/len(sizes)].Name(), SchemeBBB, on)
	})
	type raw struct{ rej, exec, drains []float64 }
	perSize := make([]raw, len(sizes))
	for wi := range reg {
		for i := range sizes {
			r := cells[wi*len(sizes)+i]
			// Geomean needs positive values; +1 shifts zero counts.
			perSize[i].rej = append(perSize[i].rej, float64(r.Rejections)+1)
			perSize[i].exec = append(perSize[i].exec, float64(r.Cycles))
			perSize[i].drains = append(perSize[i].drains, float64(r.Drains)+1)
		}
	}
	base := perSize[0]
	baseRej, baseExec, baseDrains := stats.Geomean(base.rej), stats.Geomean(base.exec), stats.Geomean(base.drains)
	var out []Fig8Point
	for i, n := range sizes {
		out = append(out, Fig8Point{
			Entries:    n,
			Rejections: stats.Geomean(perSize[i].rej) / baseRej,
			ExecTime:   stats.Geomean(perSize[i].exec) / baseExec,
			Drains:     stats.Geomean(perSize[i].drains) / baseDrains,
		})
	}
	return out
}

// PStoreRow is one Table IV row: measured persistent-store fraction.
type PStoreRow struct {
	Workload    string
	Description string
	MeasuredPct float64
	PaperPct    float64
}

// RunTable4 measures the store mix of every workload (Table IV's %P-stores
// column) on the eADR machine, where no persistency mechanism perturbs it.
func RunTable4(o Options) []PStoreRow {
	reg := workload.Registry()
	return sweep.Map(o.workers(), len(reg), func(i int) PStoreRow {
		w := reg[i]
		r := MustRun(w.Name(), SchemeEADR, o)
		return PStoreRow{
			Workload:    w.Name(),
			Description: w.Description(),
			MeasuredPct: 100 * float64(r.PersistingStores) / float64(r.Stores),
			PaperPct:    w.PaperPStores(),
		}
	})
}

// SeedSweep is the multi-seed robustness summary for one (workload,
// scheme) normalized metric: the paper reports single runs; a
// production-quality harness should show how stable those numbers are
// across workload randomness.
type SeedSweep struct {
	Workload string
	// ExecRatio and WriteRatio are BBB-32 normalized to eADR, summarized
	// over seeds.
	ExecMean, ExecStdDev   float64
	WriteMean, WriteStdDev float64
	Seeds                  int
}

// RunSeedSweep reruns the Fig. 7 comparison for one workload across seeds.
func RunSeedSweep(workloadName string, o Options, seeds []int64) (SeedSweep, error) {
	if len(seeds) == 0 {
		seeds = []int64{1, 2, 3, 4, 5}
	}
	if _, err := workload.ByName(workloadName); err != nil {
		return SeedSweep{}, err
	}
	// Two independent simulations per seed (eADR, then BBB), fanned out;
	// the distributions are accumulated serially in seed order.
	res := sweep.Map(o.workers(), 2*len(seeds), func(i int) Result {
		os := o
		os.Seed = seeds[i/2]
		if i%2 == 0 {
			return MustRun(workloadName, SchemeEADR, os)
		}
		return MustRun(workloadName, SchemeBBB, os)
	})
	var exec, writes stats.Distribution
	for si := range seeds {
		eadr, bbb := res[2*si], res[2*si+1]
		exec.Observe(stats.Ratio(float64(bbb.Cycles), float64(eadr.Cycles)))
		writes.Observe(stats.Ratio(float64(bbb.NVMMWrites), float64(eadr.NVMMWrites)))
	}
	return SeedSweep{
		Workload:    workloadName,
		ExecMean:    exec.Mean(),
		ExecStdDev:  exec.StdDev(),
		WriteMean:   writes.Mean(),
		WriteStdDev: writes.StdDev(),
		Seeds:       len(seeds),
	}, nil
}

// SchemeRow is one (workload, scheme) cell of the extended comparison that
// also covers the BEP and NVCache designs the paper discusses
// qualitatively.
type SchemeRow struct {
	Workload   string
	Scheme     Scheme
	Cycles     uint64
	NVMMWrites uint64
	Rejections uint64
	// WearMax / WearMean describe the per-line NVMM write distribution
	// (endurance: the hottest line wears out first).
	WearMax  uint64
	WearMean float64
}

// RunSchemeComparison sweeps one workload over every scheme with wear
// tracking on — the endurance ablation behind the paper's §V-C argument
// that memory-side coalescing and skipped writebacks protect NVMM lifetime.
func RunSchemeComparison(workloadName string, o Options) ([]SchemeRow, error) {
	o.TrackWear = true
	if _, err := workload.ByName(workloadName); err != nil {
		return nil, err
	}
	schemes := persistencySchemes()
	rows := sweep.Map(o.workers(), len(schemes), func(i int) SchemeRow {
		s := schemes[i]
		r := MustRun(workloadName, s, o)
		return SchemeRow{
			Workload:   workloadName,
			Scheme:     s,
			Cycles:     r.Cycles,
			NVMMWrites: r.NVMMWrites,
			Rejections: r.Rejections,
			WearMax:    r.Wear.MaxWrites,
			WearMean:   r.Wear.MeanWrites,
		}
	})
	return rows, nil
}

// WPQDepthPoint is one cell of the write-pending-queue depth ablation: the
// WPQ is the ADR persistence domain below the bbPBs, so its depth bounds
// how much persist traffic the controller can absorb before backpressure
// reaches the buffers and then the cores.
type WPQDepthPoint struct {
	Entries    int
	Cycles     uint64
	NVMMWrites uint64
	FullStalls uint64
}

// RunWPQDepthAblation sweeps the NVMM WPQ depth on one workload under BBB.
func RunWPQDepthAblation(workloadName string, o Options, depths []int) ([]WPQDepthPoint, error) {
	if len(depths) == 0 {
		depths = []int{4, 8, 16, 32, 64}
	}
	if _, err := workload.ByName(workloadName); err != nil {
		return nil, err
	}
	// Each point resolves its own workload instance: Setup/Programs mutate
	// instance state, so concurrent points must never share one.
	out := sweep.Map(o.workers(), len(depths), func(i int) WPQDepthPoint {
		w, err := workload.ByName(workloadName)
		if err != nil {
			panic(err) // validated above
		}
		cfg := o.sysConfig(SchemeBBB)
		cfg.NVMM.WPQEntries = depths[i]
		r := workload.Run(w, SchemeBBB, cfg, o.params())
		return WPQDepthPoint{
			Entries:    depths[i],
			Cycles:     r.Cycles,
			NVMMWrites: r.NVMMWrites,
			FullStalls: r.Counters.Get("nvmm.wpq_full_stalls"),
		}
	})
	return out, nil
}

// DrainThresholdPoint is one cell of the drain-threshold ablation (§III-F:
// "we found 75% threshold to work well for 32-entry bbPB").
type DrainThresholdPoint struct {
	Threshold  float64
	Cycles     uint64
	NVMMWrites uint64
	Rejections uint64
}

// RunDrainThresholdAblation sweeps the bbPB drain threshold on one
// workload, holding everything else at defaults.
func RunDrainThresholdAblation(workloadName string, o Options, thresholds []float64) ([]DrainThresholdPoint, error) {
	if len(thresholds) == 0 {
		thresholds = []float64{0.125, 0.25, 0.5, 0.75, 0.9}
	}
	if _, err := workload.ByName(workloadName); err != nil {
		return nil, fmt.Errorf("threshold %.2f: %w", thresholds[0], err)
	}
	out := sweep.Map(o.workers(), len(thresholds), func(i int) DrainThresholdPoint {
		ot := o
		ot.DrainThreshold = thresholds[i]
		r := MustRun(workloadName, SchemeBBB, ot)
		return DrainThresholdPoint{
			Threshold: thresholds[i], Cycles: r.Cycles, NVMMWrites: r.NVMMWrites, Rejections: r.Rejections,
		}
	})
	return out, nil
}
