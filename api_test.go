package bbb

import (
	"testing"
)

// scaled returns options for a proportionally scaled machine: smaller
// caches matched to smaller workloads, keeping the cache-pressure regime of
// the paper's full-size runs.
func scaled(ops int) Options {
	return Options{OpsPerThread: ops, L1Size: 8 * 1024, L2Size: 64 * 1024}
}

func TestWorkloadsList(t *testing.T) {
	ws := Workloads()
	if len(ws) != 7 {
		t.Fatalf("Workloads() = %v, want the 7 Table IV rows", ws)
	}
	if ws[0] != "rtree" || ws[6] != "swapC" {
		t.Fatalf("unexpected order: %v", ws)
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	if _, err := Run("bogus", SchemeBBB, Options{}); err == nil {
		t.Fatal("unknown workload should error")
	}
}

func TestRunBasics(t *testing.T) {
	r := MustRun("hashmap", SchemeBBB, scaled(100))
	if r.Cycles == 0 || r.Stores == 0 || r.PersistingStores == 0 {
		t.Fatalf("degenerate result: %+v", r)
	}
	if r.Scheme != SchemeBBB {
		t.Fatal("scheme not recorded")
	}
}

func TestParseScheme(t *testing.T) {
	for _, name := range []string{"pmem", "eadr", "bbb", "bbb-proc", "bep", "nvcache"} {
		if _, err := ParseScheme(name); err != nil {
			t.Fatalf("ParseScheme(%q): %v", name, err)
		}
	}
	if _, err := ParseScheme("whisper"); err == nil {
		t.Fatal("bad scheme should error")
	}
}

func TestSchemeTraitsTable1(t *testing.T) {
	pm := SchemeTraits(SchemePMEM)
	if pm.SWComplexity != "High" || !pm.ExplicitPersist {
		t.Fatalf("PMEM traits wrong: %+v", pm)
	}
	bb := SchemeTraits(SchemeBBB)
	if bb.PersistInsts != "None" || bb.PoPLocation != "bbPB/L1D" || bb.ExplicitPersist {
		t.Fatalf("BBB traits wrong: %+v", bb)
	}
	if !SchemeTraits(SchemeEADR).BatteryBackedSB {
		t.Fatal("eADR must battery-back the store buffer")
	}
}

func TestFig7ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	f := RunFig7(scaled(200))
	if len(f.Rows) != 7 {
		t.Fatalf("Fig7 rows = %d", len(f.Rows))
	}
	// Paper shape: BBB-32 within a few percent of eADR; BBB-1024 ~equal;
	// write overhead shrinking to ~zero at 1024 entries.
	if f.MeanExecOverheadBBB32 > 0.15 {
		t.Fatalf("BBB-32 mean exec overhead %.1f%% too high", 100*f.MeanExecOverheadBBB32)
	}
	if f.MeanWriteOverheadBBB1024 > 0.05 {
		t.Fatalf("BBB-1024 write overhead %.1f%% should be ~0", 100*f.MeanWriteOverheadBBB1024)
	}
	for _, r := range f.Rows {
		if r.ExecBBB1024 > r.ExecBBB32*1.1 {
			t.Fatalf("%s: 1024-entry bbPB slower than 32-entry by >10%%", r.Workload)
		}
	}
}

func TestFig8ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	pts := RunFig8(scaled(150), []int{1, 8, 32, 256})
	if len(pts) != 4 {
		t.Fatalf("Fig8 points = %d", len(pts))
	}
	// Normalization anchor.
	if pts[0].Rejections != 1 || pts[0].ExecTime != 1 || pts[0].Drains != 1 {
		t.Fatalf("1-entry point not normalized: %+v", pts[0])
	}
	// Monotone shape: rejections collapse with size; exec time does not
	// increase; drains fall as coalescing grows.
	last := pts[len(pts)-1]
	if last.Rejections > 0.1 {
		t.Fatalf("rejections at 256 entries = %.3f of 1-entry, want near zero", last.Rejections)
	}
	if last.ExecTime > 1.0 {
		t.Fatalf("exec time grew with bbPB size: %.3f", last.ExecTime)
	}
	if last.Drains >= 1.0 {
		t.Fatalf("drains did not fall with bbPB size: %.3f", last.Drains)
	}
}

func TestTable4Measured(t *testing.T) {
	rows := RunTable4(scaled(120))
	if len(rows) != 7 {
		t.Fatalf("Table4 rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.MeasuredPct <= 0 || r.MeasuredPct >= 100 {
			t.Fatalf("%s: measured %%P-stores = %.1f out of range", r.Workload, r.MeasuredPct)
		}
	}
}

func TestDrainThresholdAblation(t *testing.T) {
	pts, err := RunDrainThresholdAblation("hashmap", scaled(120), []float64{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	// A lower threshold drains more eagerly: at least as many NVMM writes.
	if pts[0].NVMMWrites < pts[1].NVMMWrites {
		t.Fatalf("eager threshold wrote less (%d) than lazy (%d)", pts[0].NVMMWrites, pts[1].NVMMWrites)
	}
}

func TestWPQDepthAblation(t *testing.T) {
	pts, err := RunWPQDepthAblation("mutateNC", scaled(120), []int{4, 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].FullStalls < pts[1].FullStalls {
		t.Fatalf("shallow WPQ (%d stalls) should stall at least as much as deep (%d)",
			pts[0].FullStalls, pts[1].FullStalls)
	}
}

func TestSchemeComparisonCoversAllSchemes(t *testing.T) {
	rows, err := RunSchemeComparison("mutateNC", scaled(100))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want all 6 schemes", len(rows))
	}
	for _, r := range rows {
		if r.Cycles == 0 {
			t.Fatalf("%v: zero cycles", r.Scheme)
		}
		if r.WearMax == 0 {
			t.Fatalf("%v: wear tracking missing", r.Scheme)
		}
	}
}

func TestCrashCampaignAPI(t *testing.T) {
	o := scaled(150)
	o.Threads = 4
	o.NoBarriers = true
	rep, err := CrashCampaign("linkedlist", SchemeBBB, o, 5, 5_000, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Inconsistent != 0 {
		t.Fatalf("BBB campaign inconsistent: %s", rep.String())
	}
	if len(rep.Outcomes) != 5 {
		t.Fatalf("outcomes = %d", len(rep.Outcomes))
	}
}

func TestProcSideWriteRatioAboveOne(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	ratio := ProcSideWriteRatio(scaled(150))
	if ratio <= 1.0 {
		t.Fatalf("proc-side write ratio = %.2f, want > 1 (paper ~2.8x)", ratio)
	}
	t.Logf("proc-side/eADR write ratio = %.2fx (paper ~2.8x)", ratio)
}

func TestSeedSweepStability(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	sw, err := RunSeedSweep("hashmap", scaled(150), []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sw.Seeds != 3 {
		t.Fatalf("seeds = %d", sw.Seeds)
	}
	// BBB-32 should be close to eADR on every seed: a tight distribution.
	if sw.ExecMean < 0.8 || sw.ExecMean > 1.3 {
		t.Fatalf("exec mean = %.3f out of plausible band", sw.ExecMean)
	}
	if sw.ExecStdDev > 0.1 {
		t.Fatalf("exec ratio unstable across seeds: stddev %.3f", sw.ExecStdDev)
	}
	t.Logf("exec %.3f±%.3f writes %.3f±%.3f", sw.ExecMean, sw.ExecStdDev, sw.WriteMean, sw.WriteStdDev)
}
