package bbb

import (
	"bytes"
	"encoding/json"
	"testing"

	"bbb/internal/trace"
)

// TestDurabilityGapBBBvsPMEM is the paper's Figure 1 gap made measurable:
// under BBB every store is durable the cycle it becomes visible (the bbPB
// entry is allocated at L1D commit, §III-B), so the visibility→durability
// histogram collapses to zero; under PMEM/ADR the same stores wait for
// cache eviction or an explicit flush to reach the WPQ, so the gap is
// hundreds of cycles at the tail.
//
// The summaries are golden strings: the simulator is deterministic, so any
// drift here is a behaviour change in the pipeline, not noise.
func TestDurabilityGapBBBvsPMEM(t *testing.T) {
	opt := Options{Threads: 4, OpsPerThread: 200}
	golden := []struct {
		scheme     Scheme
		summary    string
		resolved   uint64
		unresolved uint64
	}{
		{SchemeBBB, "bbb vis->dur gap: n=4000 mean=0.0 p50=0 p95=0 p99=0 max=0", 4000, 0},
		// A handful of stores are still cache-resident when the end-of-run
		// fence drains them; the tail (max) is the last dirty line's wait.
		{SchemePMEM, "pmem vis->dur gap: n=3994 mean=189.7 p50=20 p95=449 p99=500 max=235060", 3994, 6},
	}
	for _, g := range golden {
		var buf bytes.Buffer
		res, err := RunStreaming("hashmap", g.scheme, opt, &buf)
		if err != nil {
			t.Fatalf("%s: %v", g.scheme, err)
		}
		if got := res.DurabilitySummary(); got != g.summary {
			t.Errorf("%s summary:\n got  %s\n want %s", g.scheme, got, g.summary)
		}
		if got := res.Counters.Get("persist.resolved_stores"); got != g.resolved {
			t.Errorf("%s resolved stores = %d, want %d", g.scheme, got, g.resolved)
		}
		if got := res.Counters.Get("persist.unresolved_stores"); got != g.unresolved {
			t.Errorf("%s unresolved stores = %d, want %d", g.scheme, got, g.unresolved)
		}
		if res.Metrics == nil {
			t.Fatalf("%s: RunStreaming left Metrics nil", g.scheme)
		}
		h := res.Metrics.Hist("persist.vis_to_dur_gap")
		if h == nil {
			t.Fatalf("%s: no vis_to_dur_gap histogram", g.scheme)
		}
		switch g.scheme {
		case SchemeBBB:
			if p99 := h.P99(); p99 != 0 {
				t.Errorf("bbb p99 gap = %.0f cycles, want 0 (durable at commit)", p99)
			}
		case SchemePMEM:
			if p99 := h.P99(); p99 < 100 {
				t.Errorf("pmem p99 gap = %.0f cycles, want WPQ-bound (>= 100)", p99)
			}
		}

		// The stream must round-trip: JSONL parses back, and the Perfetto
		// export is valid Chrome trace-event JSON with a non-empty
		// traceEvents array (what ui.perfetto.dev actually loads).
		evs, err := trace.ParseJSONL(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: ParseJSONL: %v", g.scheme, err)
		}
		if len(evs) == 0 {
			t.Fatalf("%s: streamed trace is empty", g.scheme)
		}
		var pf bytes.Buffer
		if err := trace.WritePerfetto(&pf, evs, trace.PerfettoMeta{Process: "bbbsim"}); err != nil {
			t.Fatalf("%s: WritePerfetto: %v", g.scheme, err)
		}
		var doc struct {
			TraceEvents []map[string]any `json:"traceEvents"`
		}
		if err := json.Unmarshal(pf.Bytes(), &doc); err != nil {
			t.Fatalf("%s: Perfetto export is not valid JSON: %v", g.scheme, err)
		}
		if len(doc.TraceEvents) < len(evs) {
			t.Errorf("%s: Perfetto export has %d traceEvents for %d trace events",
				g.scheme, len(doc.TraceEvents), len(evs))
		}
	}
}

// TestStreamedTraceDeterministic: the JSONL stream is byte-identical across
// runs of the same seed — the property bbbtrace's golden workflows and the
// detlint sink rules exist to protect.
func TestStreamedTraceDeterministic(t *testing.T) {
	opt := Options{Threads: 4, OpsPerThread: 50}
	var a, b bytes.Buffer
	if _, err := RunStreaming("ctree", SchemeBBB, opt, &a); err != nil {
		t.Fatal(err)
	}
	if _, err := RunStreaming("ctree", SchemeBBB, opt, &b); err != nil {
		t.Fatal(err)
	}
	if a.Len() == 0 {
		t.Fatal("empty trace stream")
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same seed produced different trace streams")
	}
}
