package bbb

import (
	"reflect"
	"testing"

	"bbb/internal/crashmc"
	"bbb/internal/engine"
	"bbb/internal/persistency"
	"bbb/internal/workload"
)

// compiledNames returns every registered workload that carries a compiled
// twin — the Table IV rows plus the linked list and WAL extras. The count is
// pinned so a workload silently losing its CompiledPrograms implementation
// (and thereby dropping out of the ir-equiv gate) fails loudly.
func compiledNames(t *testing.T) []string {
	t.Helper()
	var names []string
	for _, w := range append(workload.Registry(), workload.Extras()...) {
		if _, ok := workload.Compiled(w); ok {
			names = append(names, w.Name())
		}
	}
	if len(names) != 9 {
		t.Fatalf("compiled workloads = %v (%d), want the 9 ported Table IV+extras rows", names, len(names))
	}
	return names
}

// TestIREquivalenceMatrix is the tentpole's acceptance gate (`make
// ir-equiv`): for every compiled workload under every scheme and three
// seeds, the compiled-IR path must produce a system.Result deep-equal to
// the goroutine path's — stats, metrics, cycle counts, everything. The two
// paths share no execution machinery above the core's request dispatch, so
// equality here means the IR emission, the interpreter, and the inline
// core driver reproduce the goroutine twins' machine-action streams
// exactly.
func TestIREquivalenceMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload x scheme x seed matrix")
	}
	for _, name := range compiledNames(t) {
		for _, s := range persistency.Schemes() {
			for _, seed := range []int64{1, 2, 3} {
				o := scaled(60)
				o.Seed = seed
				got := MustRunCompiled(name, s, o)
				want := MustRun(name, s, o)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s/%s seed %d: compiled result diverged from goroutine result\ncompiled:  %+v\ngoroutine: %+v",
						name, s, seed, got, want)
				}
			}
		}
	}
}

// TestIRCrashEquivalence extends the gate to crash injection: stopping both
// paths at the same mid-run cycle and capturing the crash-image record
// through the crashmc recorder must yield identical records — same pending
// persistence-domain writes (address, data, class, epoch, order), same
// deterministic drain, same base NVMM image. This is what lets crashmc
// campaigns and the litmus conformance harness move to the compiled path
// without re-validating their reachable spaces.
func TestIRCrashEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("crash matrix")
	}
	// PMEM and BEP exercise the two nonempty pending-write classes; BBB
	// covers the flush-on-fail schemes (whose records reduce to the base
	// image, making this mostly an NVMM-image comparison).
	schemes := []Scheme{persistency.PMEM, persistency.BEP, persistency.BBB}
	for _, name := range []string{"hashmap", "rtree", "wal"} {
		for _, s := range schemes {
			for _, crashAt := range []engine.Cycle{2_000, 7_500} {
				o := scaled(80)
				cfg, p := o.sysConfig(s), o.params()

				w, err := workload.ByName(name)
				if err != nil {
					t.Fatal(err)
				}
				gsys, gfin := workload.BuildToCrash(w, s, cfg, p, crashAt)
				grec := crashmc.Capture(gsys, crashAt, gfin)

				cw, ok := workload.Compiled(mustByName(t, name))
				if !ok {
					t.Fatalf("%s lost its compiled twin", name)
				}
				csys, cfin := workload.BuildToCrashCompiled(cw, s, cfg, p, crashAt)
				crec := crashmc.Capture(csys, crashAt, cfin)

				if gfin != cfin {
					t.Errorf("%s/%s @%d: finished mismatch: goroutine %v, compiled %v", name, s, crashAt, gfin, cfin)
					continue
				}
				if !reflect.DeepEqual(grec, crec) {
					t.Errorf("%s/%s @%d: crash records diverged\ngoroutine: %+v\ncompiled:  %+v",
						name, s, crashAt, grec, crec)
				}
			}
		}
	}
}

// mustByName fetches a fresh workload instance (ByName constructs anew per
// call, which the two-path comparisons rely on for independent state).
func mustByName(t *testing.T, name string) workload.Workload {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w
}
