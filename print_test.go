package bbb

import (
	"strings"
	"testing"
)

// The table printers feed the bbbench CLI; each must render every expected
// row without touching the simulator.
func TestStaticTablePrinters(t *testing.T) {
	var b strings.Builder
	PrintTable1(&b)
	PrintTable3(&b)
	PrintTable5(&b)
	PrintTable6(&b)
	PrintTable7And8(&b, 32)
	PrintTable9(&b, 32)
	PrintTable10(&b)
	PrintTable11(&b)
	out := b.String()
	for _, want := range []string{
		"PMEM", "eADR", "BBB", "BEP", "NVCache", // Table I rows
		"bbPB", "drain threshold 75%", // Table III
		"Mobile Class", "Server Class", // Table V
		"11.839", "11.228", // Table VI
		"eADR/BBB",            // Tables VII/VIII
		"SuperCap", "Li-thin", // Table IX
		"1024",                    // Table X sweep
		"Processor modifications", // Table XI
	} {
		if !strings.Contains(out, want) {
			t.Errorf("printed tables missing %q", want)
		}
	}
}

func TestDynamicPrinters(t *testing.T) {
	o := scaled(60)
	var b strings.Builder
	PrintTable4(&b, RunTable4(o))
	if !strings.Contains(b.String(), "hashmap") {
		t.Fatal("Table IV print missing workloads")
	}
	b.Reset()
	PrintFig8(&b, RunFig8(o, []int{1, 32}))
	if !strings.Contains(b.String(), "32") {
		t.Fatal("Fig 8 print missing sweep points")
	}
	b.Reset()
	rows, err := RunSchemeComparison("mutateNC", o)
	if err != nil {
		t.Fatal(err)
	}
	PrintSchemeComparison(&b, rows)
	if !strings.Contains(b.String(), "wear") {
		t.Fatal("scheme comparison print missing wear columns")
	}
	PrintSchemeComparison(&b, nil) // empty input must be a no-op
}
