package bbb

import (
	"reflect"
	"testing"

	"bbb/internal/persistency"
	"bbb/internal/sweep"
)

// TestConcurrentSimsIndependent runs two simulations on plain goroutines
// and checks each against a serial rerun. Under `go test -race` this is
// the shared-mutable-state audit made executable: every machine must be
// fully private to its goroutine, and concurrency must not perturb the
// deterministic results.
func TestConcurrentSimsIndependent(t *testing.T) {
	o := scaled(100)
	type run struct {
		workload string
		scheme   Scheme
	}
	runs := []run{{"hashmap", SchemeBBB}, {"rtree", SchemeEADR}}

	concurrent := make([]Result, len(runs))
	done := make(chan int, len(runs))
	for i, r := range runs {
		go func(i int, r run) {
			concurrent[i] = MustRun(r.workload, r.scheme, o)
			done <- i
		}(i, r)
	}
	for range runs {
		<-done
	}

	for i, r := range runs {
		serial := MustRun(r.workload, r.scheme, o)
		if !reflect.DeepEqual(concurrent[i], serial) {
			t.Errorf("%s/%s: concurrent run diverged from serial rerun\nconcurrent: %+v\nserial:     %+v",
				r.workload, r.scheme, concurrent[i], serial)
		}
	}
}

// TestParallelSweepMatchesSerial asserts the byte-identical-output contract
// of the sweep runner on a Fig7-sized matrix: every Table IV workload under
// every scheme, two seeds each, run serially and then with four workers.
// Each index slot must deep-equal its serial counterpart.
func TestParallelSweepMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload x scheme x seed matrix")
	}
	schemes := persistency.Schemes()
	workloads := Workloads()
	seeds := []int64{1, 2}
	n := len(workloads) * len(schemes) * len(seeds)
	point := func(i int) Result {
		o := scaled(60)
		o.Seed = seeds[i%len(seeds)]
		s := schemes[(i/len(seeds))%len(schemes)]
		w := workloads[i/(len(seeds)*len(schemes))]
		return MustRun(w, s, o)
	}

	serial := sweep.Map(1, n, point)
	parallel := sweep.Map(4, n, point)
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("point %d (workload %s, scheme %s, seed %d): parallel result differs from serial",
				i, workloads[i/(len(seeds)*len(schemes))],
				schemes[(i/len(seeds))%len(schemes)], seeds[i%len(seeds)])
		}
	}
}

// TestIRParallelMatchesGoroutineSerial crosses the two equivalence axes:
// the compiled-IR path fanned out over four sweep workers must deep-equal
// the goroutine path run serially, point for point, on a full workload ×
// scheme × seed matrix. Passing means the IR path is byte-identical to the
// goroutine path at any parallelism — the `make ir-equiv` acceptance bar —
// and that compiled machines are as goroutine-private as the originals
// (this file runs under -race in `make check`).
func TestIRParallelMatchesGoroutineSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload x scheme x seed matrix")
	}
	schemes := persistency.Schemes()
	workloads := Workloads()
	seeds := []int64{1, 2}
	n := len(workloads) * len(schemes) * len(seeds)
	opts := func(i int) (string, Scheme, Options) {
		o := scaled(60)
		o.Seed = seeds[i%len(seeds)]
		s := schemes[(i/len(seeds))%len(schemes)]
		w := workloads[i/(len(seeds)*len(schemes))]
		return w, s, o
	}

	serial := sweep.Map(1, n, func(i int) Result {
		w, s, o := opts(i)
		return MustRun(w, s, o)
	})
	compiled := sweep.Map(4, n, func(i int) Result {
		w, s, o := opts(i)
		return MustRunCompiled(w, s, o)
	})
	for i := range serial {
		if !reflect.DeepEqual(serial[i], compiled[i]) {
			w, s, o := opts(i)
			t.Errorf("point %d (workload %s, scheme %s, seed %d): parallel compiled result differs from serial goroutine result",
				i, w, s, o.Seed)
		}
	}
}

// TestDriversParallelMatchesSerial checks the ported experiment drivers
// end to end: the same driver with Parallelism set must return a result
// deep-equal to its serial run.
func TestDriversParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("several full sweeps")
	}
	serialOpts := scaled(50)
	parOpts := serialOpts
	parOpts.Parallelism = 4

	t.Run("Table4", func(t *testing.T) {
		if got, want := RunTable4(parOpts), RunTable4(serialOpts); !reflect.DeepEqual(got, want) {
			t.Errorf("RunTable4 parallel != serial\ngot:  %+v\nwant: %+v", got, want)
		}
	})
	t.Run("Fig8", func(t *testing.T) {
		sizes := []int{8, 32}
		if got, want := RunFig8(parOpts, sizes), RunFig8(serialOpts, sizes); !reflect.DeepEqual(got, want) {
			t.Errorf("RunFig8 parallel != serial\ngot:  %+v\nwant: %+v", got, want)
		}
	})
	t.Run("SeedSweep", func(t *testing.T) {
		got, err := RunSeedSweep("hashmap", parOpts, []int64{1, 2, 3})
		if err != nil {
			t.Fatal(err)
		}
		want, err := RunSeedSweep("hashmap", serialOpts, []int64{1, 2, 3})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("RunSeedSweep parallel != serial\ngot:  %+v\nwant: %+v", got, want)
		}
	})
	t.Run("CrashCampaign", func(t *testing.T) {
		got, err := CrashCampaign("hashmap", SchemeBBB, parOpts, 6, 2_000, 4_000)
		if err != nil {
			t.Fatal(err)
		}
		want, err := CrashCampaign("hashmap", SchemeBBB, serialOpts, 6, 2_000, 4_000)
		if err != nil {
			t.Fatal(err)
		}
		// Outcome.Err values are distinct error instances; campaigns on a
		// consistent workload must have none, so compare them as nil-ness
		// and the rest structurally.
		for i := range got.Outcomes {
			if (got.Outcomes[i].Err == nil) != (want.Outcomes[i].Err == nil) {
				t.Fatalf("outcome %d: Err mismatch: %v vs %v", i, got.Outcomes[i].Err, want.Outcomes[i].Err)
			}
			got.Outcomes[i].Err, want.Outcomes[i].Err = nil, nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("CrashCampaign parallel != serial\ngot:  %+v\nwant: %+v", got, want)
		}
	})
}
