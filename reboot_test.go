package bbb

import "testing"

// The whole-story test: a persistent linked list survives repeated
// crash/reboot cycles under BBB with zero barriers. Each generation of the
// machine recovers the head pointer from the durable image, continues
// prepending where the previous life left off, and the final walk must see
// one unbroken descending chain — program order persisted across lives.
func TestRebootCyclesContinueWork(t *testing.T) {
	const (
		offMagic = 0
		offVal   = 8
		offNext  = 16
		magic    = 0x0DDB1750
	)
	o := Options{Threads: 1}
	m := NewMachine(SchemeBBB, o)
	head := m.PAlloc(64)

	prepend := func(mach *Machine, count uint64) func(Env) {
		return func(e Env) {
			cur := e.Load(head, 8)
			// Continue numbering from the recovered chain.
			base := uint64(0)
			if cur != 0 {
				base = e.Load(Addr(cur)+offVal, 8)
			}
			for i := uint64(1); i <= count; i++ {
				node := mach.PAlloc(24)
				e.Store(node+offVal, 8, base+i)
				e.Store(node+offNext, 8, cur)
				e.Store(node+offMagic, 8, magic)
				e.Store(head, 8, uint64(node))
				cur = uint64(node)
			}
		}
	}

	// Three lives, each crashed mid-run.
	for life := 0; life < 3; life++ {
		m.RunUntilCrash(6_000, prepend(m, 500))
		if life < 2 {
			m = m.Recover(SchemeBBB, o)
		}
	}

	// Final recovery walk over the durable image.
	ptr := m.Peek64(head)
	if ptr == 0 {
		t.Fatal("nothing survived three lives")
	}
	var prev uint64
	n := 0
	for ptr != 0 {
		rec := Addr(ptr)
		if m.Peek64(rec+offMagic) != magic {
			t.Fatalf("node %#x not fully persisted", ptr)
		}
		val := m.Peek64(rec + offVal)
		if prev != 0 && val != prev-1 {
			t.Fatalf("chain broken across lives: %d then %d", prev, val)
		}
		prev = val
		ptr = m.Peek64(rec + offNext)
		if n++; n > 10_000 {
			t.Fatal("cycle in chain")
		}
	}
	if n < 3 {
		t.Fatalf("only %d nodes across three lives", n)
	}
	t.Logf("%d nodes survive three crash/reboot cycles in one consistent chain", n)
}

// The same harness under the PMEM baseline without barriers must break the
// chain at some point across lives — the recovered head can dangle.
func TestRebootCyclesPMEMNoBarriersBreaks(t *testing.T) {
	const (
		offMagic = 0
		offVal   = 8
		offNext  = 16
		magic    = 0x0DDB1750
	)
	// Tiny caches, and DRAM churn between prepends so the hot head line
	// gets evicted (persisted) while freshly written nodes have not been —
	// the eviction-order reordering of §I.
	o := Options{Threads: 1, L1Size: 1024, L2Size: 4096}
	m := NewMachine(SchemePMEM, o)
	head := m.PAlloc(64)

	broken := false
	for life := 0; life < 4 && !broken; life++ {
		mach := m
		scratch := m.VolatileBase()
		m.RunUntilCrash(40_000, func(e Env) {
			cur := e.Load(head, 8)
			for i := uint64(1); i <= 500; i++ {
				node := mach.PAlloc(24)
				e.Store(node+offVal, 8, i)
				e.Store(node+offNext, 8, cur)
				e.Store(node+offMagic, 8, magic)
				e.Store(head, 8, uint64(node)) // no barriers anywhere
				cur = uint64(node)
				// Churn enough distinct lines to force evictions.
				for j := uint64(0); j < 8; j++ {
					e.Store(scratch+Addr(((i*8+j)%128)*64), 8, i)
				}
			}
		})
		// Recovery walk: is the chain intact?
		ptr := m.Peek64(head)
		for ptr != 0 {
			if m.Peek64(Addr(ptr)+offMagic) != magic {
				broken = true
				break
			}
			ptr = m.Peek64(Addr(ptr) + offNext)
		}
		m = m.Recover(SchemePMEM, o)
	}
	if !broken {
		t.Fatal("PMEM without barriers survived four crash lives intact; the baseline is too strong")
	}
}
