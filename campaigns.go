package bbb

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"bbb/internal/energy"
	"bbb/internal/obs"
)

// The frontier campaign is the repo's first ledger-backed resumable sweep:
// bbPB size × drain threshold under BBB on one workload, priced with the
// §IV-C energy model, reduced to a battery-budget frontier — for each
// battery volume, the largest buffer that can safely drain and the best
// performance available within the budget. Every point checkpoints to the
// run ledger as it completes, so a killed campaign resumes without
// re-simulating and finishes with byte-identical results and summary
// digest at any -parallel setting.

// FrontierConfig shapes RunFrontierCampaign.
type FrontierConfig struct {
	// Workload is the benchmark to sweep (default "hashmap").
	Workload string
	// Entries are the bbPB sizes (default 8, 16, 32, 64).
	Entries []int
	// Thresholds are the drain occupancy thresholds (default 0.25, 0.5,
	// 0.75).
	Thresholds []float64
	// BudgetsMM3 are the battery volumes the frontier is evaluated at
	// (default 1, 5, 20, 100 mm^3).
	BudgetsMM3 []float64
	// Tech is the battery technology: "supercap" (default) or "li-thin".
	Tech string
	// Platform prices drains on "mobile" (default) or "server".
	Platform string
	// MaxPoints, when positive, stops after that many fresh points (the
	// deterministic stand-in for a kill; see obs.Campaign).
	MaxPoints int
	// Ledger receives the checkpoint stream. Required.
	Ledger *obs.Ledger
	// Host and Clock stamp ledger lines with provenance; both optional
	// and never part of the deterministic output.
	Host  *obs.HostInfo
	Clock func() int64
	// Progress, when non-nil, receives resume/verification notes. Keep it
	// off stdout: the report itself is the deterministic artifact.
	Progress io.Writer
}

func (fc *FrontierConfig) fill() {
	if fc.Workload == "" {
		fc.Workload = "hashmap"
	}
	if len(fc.Entries) == 0 {
		fc.Entries = []int{8, 16, 32, 64}
	}
	if len(fc.Thresholds) == 0 {
		fc.Thresholds = []float64{0.25, 0.5, 0.75}
	}
	if len(fc.BudgetsMM3) == 0 {
		fc.BudgetsMM3 = []float64{1, 5, 20, 100}
	}
	if fc.Tech == "" {
		fc.Tech = "supercap"
	}
	if fc.Platform == "" {
		fc.Platform = "mobile"
	}
}

func (fc *FrontierConfig) tech() (energy.BatteryTech, error) {
	switch fc.Tech {
	case "supercap":
		return energy.SuperCap(), nil
	case "li-thin":
		return energy.LiThin(), nil
	}
	return energy.BatteryTech{}, fmt.Errorf("unknown battery tech %q (want supercap or li-thin)", fc.Tech)
}

func (fc *FrontierConfig) platform() (energy.Platform, error) {
	switch fc.Platform {
	case "mobile":
		return energy.Mobile(), nil
	case "server":
		return energy.Server(), nil
	}
	return energy.Platform{}, fmt.Errorf("unknown platform %q (want mobile or server)", fc.Platform)
}

// FrontierPoint is one simulated configuration with its energy pricing.
type FrontierPoint struct {
	Entries      int     `json:"entries"`
	Threshold    float64 `json:"threshold"`
	Cycles       uint64  `json:"cycles"`
	NVMMWrites   uint64  `json:"nvmm_writes"`
	Rejections   uint64  `json:"rejections"`
	Drains       uint64  `json:"drains"`
	StallCycles  uint64  `json:"stall_cycles"`
	DrainEnergyJ float64 `json:"drain_energy_j"`
	DrainTimeUS  float64 `json:"drain_time_us"`
}

// FrontierRow is one budget row: the largest buffer that fits and the
// best-performing swept configuration within the budget.
type FrontierRow struct {
	BudgetMM3 float64
	// BudgetEnergyJ is the usable energy at that volume.
	BudgetEnergyJ float64
	// MaxEntries is the largest swept bbPB size that fits (0: none).
	MaxEntries int
	// Best is the fitting point with the fewest cycles (ties: smaller
	// buffer, then lower threshold). Nil when nothing fits.
	Best *FrontierPoint
}

// FrontierResult is a completed (or interrupted) frontier campaign.
type FrontierResult struct {
	Workload   string
	Platform   string
	Tech       string
	RunID      string
	Restored   int
	Fresh      int
	VerifiedIx int
	Complete   bool
	SummarySHA string
	// Points holds every swept configuration in grid order (nil while
	// incomplete).
	Points []FrontierPoint
	Rows   []FrontierRow
}

// frontierSpec is the deterministic run identity: everything that changes
// the simulated results, and nothing that does not (worker count, host).
type frontierSpec struct {
	Workload   string    `json:"workload"`
	Threads    int       `json:"threads"`
	Ops        int       `json:"ops_per_thread"`
	Seed       int64     `json:"seed"`
	NoBarriers bool      `json:"no_barriers,omitempty"`
	L1Size     int       `json:"l1_size,omitempty"`
	L2Size     int       `json:"l2_size,omitempty"`
	Prefetch   bool      `json:"store_prefetch,omitempty"`
	Relaxed    bool      `json:"relaxed,omitempty"`
	Clients    int       `json:"clients,omitempty"`
	BatchWin   uint64    `json:"batch_window,omitempty"`
	Platform   string    `json:"platform"`
	Tech       string    `json:"tech"`
	Entries    []int     `json:"entries"`
	Thresholds []float64 `json:"thresholds"`
}

type frontierCell struct {
	Entries   int     `json:"entries"`
	Threshold float64 `json:"threshold"`
}

// RunFrontierCampaign executes (or resumes) the frontier campaign.
func RunFrontierCampaign(o Options, fc FrontierConfig) (FrontierResult, error) {
	fc.fill()
	var res FrontierResult
	tech, err := fc.tech()
	if err != nil {
		return res, err
	}
	plat, err := fc.platform()
	if err != nil {
		return res, err
	}
	if _, err := Run(fc.Workload, SchemeBBB, Options{Threads: 1, OpsPerThread: 1}); err != nil {
		return res, fmt.Errorf("validating workload: %w", err)
	}
	res.Workload, res.Platform, res.Tech = fc.Workload, plat.Name, tech.Name

	var cells []frontierCell
	for _, e := range fc.Entries {
		for _, th := range fc.Thresholds {
			cells = append(cells, frontierCell{Entries: e, Threshold: th})
		}
	}
	model := energy.DefaultCostModel()
	camp := &obs.Campaign[frontierCell, FrontierPoint]{
		Name: "frontier",
		Spec: frontierSpec{
			Workload: fc.Workload, Threads: o.Threads, Ops: o.OpsPerThread,
			Seed: o.Seed, NoBarriers: o.NoBarriers, L1Size: o.L1Size,
			L2Size: o.L2Size, Prefetch: o.StorePrefetch,
			Relaxed: o.RelaxedConsistency, Clients: o.Clients,
			BatchWin: uint64(o.BatchWindow), Platform: fc.Platform,
			Tech: fc.Tech, Entries: fc.Entries, Thresholds: fc.Thresholds,
		},
		Points: cells,
		Key: func(i int, c frontierCell) string {
			return fmt.Sprintf("e%03d-t%.3f", c.Entries, c.Threshold)
		},
		Run: func(i int, c frontierCell) FrontierPoint {
			oc := o
			oc.BBPBEntries = c.Entries
			oc.DrainThreshold = c.Threshold
			r := MustRun(fc.Workload, SchemeBBB, oc)
			return FrontierPoint{
				Entries:      c.Entries,
				Threshold:    c.Threshold,
				Cycles:       r.Cycles,
				NVMMWrites:   r.NVMMWrites,
				Rejections:   r.Rejections,
				Drains:       r.Drains,
				StallCycles:  r.StallCycles,
				DrainEnergyJ: model.FrontierEnergyFor(plat, c.Entries),
				DrainTimeUS:  model.BBBDrainTimeS(plat, c.Entries) * 1e6,
			}
		},
		Workers:   o.workers(),
		MaxPoints: fc.MaxPoints,
		Ledger:    fc.Ledger,
		Host:      fc.Host,
		Clock:     fc.Clock,
	}
	out, err := camp.Execute()
	if err != nil {
		return res, err
	}
	res.RunID = out.RunID
	res.Restored, res.Fresh = out.Restored, out.Fresh
	res.VerifiedIx = out.VerifiedIndex
	res.Complete = out.Complete
	res.SummarySHA = out.SummarySHA
	if fc.Progress != nil {
		fmt.Fprintf(fc.Progress, "frontier run %s: %d restored, %d fresh", out.RunID, out.Restored, out.Fresh)
		if out.VerifiedIndex >= 0 {
			fmt.Fprintf(fc.Progress, ", overlap point %d re-verified", out.VerifiedIndex)
		}
		if !out.Complete {
			fmt.Fprintf(fc.Progress, " (incomplete: re-run to resume)")
		}
		fmt.Fprintln(fc.Progress)
	}
	if !out.Complete {
		return res, nil
	}
	res.Points = out.Results

	for _, budget := range fc.BudgetsMM3 {
		row := FrontierRow{
			BudgetMM3:     budget,
			BudgetEnergyJ: model.BudgetEnergyJ(tech, budget),
			MaxEntries:    model.MaxEntriesWithinBudget(plat, fc.Entries, tech, budget),
		}
		for i := range res.Points {
			p := &res.Points[i]
			if !model.FitsBudget(plat, p.Entries, tech, budget) {
				continue
			}
			if row.Best == nil || p.Cycles < row.Best.Cycles ||
				(p.Cycles == row.Best.Cycles && (p.Entries < row.Best.Entries ||
					(p.Entries == row.Best.Entries && p.Threshold < row.Best.Threshold))) {
				row.Best = p
			}
		}
		res.Rows = append(res.Rows, row)
	}
	sort.Slice(res.Rows, func(i, j int) bool { return res.Rows[i].BudgetMM3 < res.Rows[j].BudgetMM3 })
	return res, nil
}

// Report renders the campaign as the deterministic artifact bbbsim prints:
// the swept grid, the budget frontier, and the summary digest that makes
// two runs comparable with cmp(1).
func (r FrontierResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "frontier campaign: workload=%s platform=%q tech=%s run=%s\n",
		r.Workload, r.Platform, r.Tech, r.RunID)
	if !r.Complete {
		fmt.Fprintf(&b, "incomplete: %d points done this session (re-run to resume)\n", r.Fresh+r.Restored)
		return b.String()
	}
	fmt.Fprintf(&b, "%8s %9s %10s %11s %10s %8s %12s %12s\n",
		"entries", "thresh", "cycles", "nvmm_wr", "reject", "drains", "drain_uJ", "drain_us")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%8d %9.3f %10d %11d %10d %8d %12.3f %12.4f\n",
			p.Entries, p.Threshold, p.Cycles, p.NVMMWrites, p.Rejections,
			p.Drains, p.DrainEnergyJ*1e6, p.DrainTimeUS)
	}
	fmt.Fprintf(&b, "battery-budget frontier (%s, %s):\n", r.Tech, r.Platform)
	fmt.Fprintf(&b, "%12s %12s %11s %s\n", "budget_mm3", "budget_uJ", "max_entries", "best config")
	for _, row := range r.Rows {
		best := "none fits"
		if row.Best != nil {
			best = fmt.Sprintf("e=%d t=%.3f cycles=%d", row.Best.Entries, row.Best.Threshold, row.Best.Cycles)
		}
		fmt.Fprintf(&b, "%12.1f %12.3f %11d %s\n", row.BudgetMM3, row.BudgetEnergyJ*1e6, row.MaxEntries, best)
	}
	fmt.Fprintf(&b, "summary sha256 %s\n", r.SummarySHA)
	return b.String()
}
