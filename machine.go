package bbb

import (
	"fmt"
	"io"

	"bbb/internal/cpu"
	"bbb/internal/memory"
	"bbb/internal/palloc"
	"bbb/internal/persistency"
	"bbb/internal/system"
)

// Env is the interface a custom program uses to execute on the simulated
// machine: Load/Store for memory, PersistBarrier for the active scheme's
// ordering instruction (free under BBB/eADR), Compute for non-memory work.
type Env = cpu.Env

// Addr is a simulated physical address.
type Addr = memory.Addr

// Machine is a fully wired simulated machine for custom programs — the
// route for building your own persistent data structures on top of the
// simulator rather than running the canned Table IV workloads.
//
//	m := bbb.NewMachine(bbb.SchemeBBB, bbb.Options{Threads: 2})
//	head := m.PAlloc(64)
//	m.RunPrograms(func(e bbb.Env) { e.Store(head, 8, 42) }, ...)
type Machine struct {
	sys   *system.System
	arena *palloc.Arena
}

// NewMachine builds a machine running scheme s.
func NewMachine(s Scheme, o Options) *Machine {
	cfg := o.sysConfig(s)
	if o.Threads > 0 {
		cfg.Cores = o.Threads
		cfg.Hierarchy.Cores = o.Threads
	}
	sys := system.New(cfg)
	return &Machine{sys: sys, arena: palloc.FromLayout(cfg.Layout)}
}

// Recover reboots after a crash: it returns a fresh machine (cold caches,
// empty persist buffers and store buffers) running scheme s over this
// machine's durable NVMM image, exactly what a restart sees. The
// persistent-heap allocator carries over so new allocations never collide
// with recovered data. Call after RunUntilCrash.
func (m *Machine) Recover(s Scheme, o Options) *Machine {
	cfg := o.sysConfig(s)
	if o.Threads > 0 {
		cfg.Cores = o.Threads
		cfg.Hierarchy.Cores = o.Threads
	}
	sys := system.NewOnImage(cfg, m.sys.Mem)
	return &Machine{sys: sys, arena: m.arena}
}

// Cores returns the machine's core count.
func (m *Machine) Cores() int { return m.sys.Cfg.Cores }

// PAlloc allocates size bytes of persistent memory (the paper's palloc):
// stores through the returned address are persisting stores.
func (m *Machine) PAlloc(size uint64) Addr { return m.arena.Alloc(size) }

// VolatileBase returns a DRAM address usable as scratch space (stores to it
// never persist).
func (m *Machine) VolatileBase() Addr { return 0x2000_0000 }

// Poke pre-loads bytes into the durable image before a run (initial state,
// as if recovered from an earlier session).
func (m *Machine) Poke(a Addr, b []byte) { m.sys.Mem.Poke(a, b) }

// Peek reads the durable NVMM image — what post-crash recovery code would
// see. It does NOT include data still in the volatile caches.
func (m *Machine) Peek(a Addr, n int) []byte { return m.sys.Mem.Peek(a, n) }

// Peek64 reads a little-endian 64-bit value from the durable image.
func (m *Machine) Peek64(a Addr) uint64 {
	b := m.Peek(a, 8)
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

// RunPrograms runs one program per core to completion and returns the
// run's metrics. The machine is single-shot: build a new one per run.
func (m *Machine) RunPrograms(programs ...func(Env)) Result {
	if len(programs) != m.sys.Cfg.Cores {
		panic(fmt.Sprintf("bbb: %d programs for %d cores (set Options.Threads)", len(programs), m.sys.Cfg.Cores))
	}
	progs := make([]system.Program, len(programs))
	for i, p := range programs {
		progs[i] = system.Program(p)
	}
	return m.sys.Run(progs)
}

// RunUntilCrash runs the programs until crashCycle, then performs the
// scheme's flush-on-fail drain, leaving the durable image exactly as
// recovery would find it. It reports whether the programs finished first
// and what the battery had to drain.
func (m *Machine) RunUntilCrash(crashCycle Cycle, programs ...func(Env)) (finished bool, drained persistency.DrainReport) {
	if len(programs) != m.sys.Cfg.Cores {
		panic(fmt.Sprintf("bbb: %d programs for %d cores (set Options.Threads)", len(programs), m.sys.Cfg.Cores))
	}
	progs := make([]system.Program, len(programs))
	for i, p := range programs {
		progs[i] = system.Program(p)
	}
	finished = m.sys.RunUntil(crashCycle, progs)
	drained = m.sys.Crash()
	return finished, drained
}

// DrainReport is re-exported for RunUntilCrash callers.
type DrainReport = persistency.DrainReport

// DumpTrace writes the retained microarchitectural events (oldest first) to
// w; a no-op unless the machine was built with Options.TraceCapacity.
func (m *Machine) DumpTrace(w io.Writer) {
	if rec := m.sys.Trace(); rec != nil {
		rec.Dump(w)
	}
}
