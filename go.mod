module bbb

go 1.22
