module bbb

go 1.23
