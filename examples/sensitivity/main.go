// Sensitivity: a miniature of the paper's Figure 8 — how bbPB size affects
// rejections, execution time and drains — plus the Table X battery cost at
// each size, so the size/cost trade-off of §V-D is visible in one screen.
//
//	go run ./examples/sensitivity
package main

import (
	"fmt"

	"bbb"
	"bbb/internal/energy"
)

func main() {
	o := bbb.Options{
		Threads:      8,
		OpsPerThread: 200,
		L1Size:       8 * 1024,
		L2Size:       64 * 1024,
	}
	sizes := []int{1, 4, 8, 16, 32, 64, 256}

	fmt.Println("bbPB size sweep (geomean over the Table IV workloads, normalized to 1 entry),")
	fmt.Println("with the mobile-class SuperCap battery volume each size requires:")
	fmt.Println()
	fmt.Printf("%8s %14s %12s %10s %18s\n", "entries", "rejections", "exec time", "drains", "battery (mm^3)")

	pts := bbb.RunFig8(o, sizes)
	m := energy.DefaultCostModel()
	mob := energy.Mobile()
	for _, p := range pts {
		vol := m.BatteryVolumeMM3(m.BBBDrainEnergyJ(mob, p.Entries), energy.SuperCap())
		fmt.Printf("%8d %14.4f %12.4f %10.4f %18.3f\n", p.Entries, p.Rejections, p.ExecTime, p.Drains, vol)
	}

	fmt.Println()
	fmt.Println("the paper's conclusion (§V-D): 32 entries is the knee — rejections are gone,")
	fmt.Println("execution time has flattened, and the battery stays a few cubic millimetres.")
}
