// Kvstore: a custom persistent key-value store built directly on the
// public Machine API, demonstrating how a downstream user writes their own
// crash-consistent structure for the simulator instead of using the canned
// Table IV workloads.
//
// The store is a fixed-bucket chained hash table. The insertion code uses
// BBB-style ordering discipline — initialize the record fully, then publish
// it with a single pointer store — and contains not a single flush or
// fence. The demo crashes the machine mid-run and then recovers: it walks
// the durable NVMM image, counts the surviving records, and verifies every
// reachable record is intact.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"

	"bbb"
)

const (
	buckets  = 256
	perCore  = 500
	threads  = 4
	magicRec = 0x5EED_F00D

	offMagic = 0
	offKey   = 8
	offVal   = 16
	offNext  = 24
	recSize  = 32
)

func main() {
	log.SetFlags(0)
	m := bbb.NewMachine(bbb.SchemeBBB, bbb.Options{Threads: threads})

	// Persistent layout: a bucket array plus a record pool per thread.
	table := m.PAlloc(buckets * 8)
	pools := make([]bbb.Addr, threads)
	for t := range pools {
		pools[t] = m.PAlloc(perCore * 64)
	}

	hash := func(k uint64) uint64 {
		k ^= k >> 33
		k *= 0xff51afd7ed558ccd
		return (k ^ k>>29) % buckets
	}

	// One program per core; thread t owns buckets where b%threads == t, so
	// publishes never race (the simulator models plain stores, not CAS).
	programs := make([]func(bbb.Env), threads)
	for t := 0; t < threads; t++ {
		t := t
		programs[t] = func(e bbb.Env) {
			next := pools[t]
			for i := 0; i < perCore; i++ {
				key := uint64(t)<<32 | uint64(i)*2654435761
				b := hash(key)
				if int(b)%threads != t {
					continue // not this thread's bucket
				}
				cell := table + bbb.Addr(b*8)
				head := e.Load(cell, 8)
				rec := next
				next += 64
				e.Store(rec+offKey, 8, key)
				e.Store(rec+offVal, 8, key^0xABCD)
				e.Store(rec+offNext, 8, head)
				e.Store(rec+offMagic, 8, magicRec)
				// Publish with one store. No barrier anywhere: BBB already
				// persists in program order.
				e.Store(cell, 8, uint64(rec)) //bbbvet:commit-store rec
			}
		}
	}

	finished, drained := m.RunUntilCrash(120_000, programs...)
	fmt.Printf("crash injected (finished=%v); battery drained %d lines (%d bbPB, %d WPQ, %d SB stores)\n",
		finished, drained.Lines(), drained.BufLines, drained.WPQLines, drained.SBStores)

	// --- recovery: walk the durable image exactly like restart code would.
	records, broken := 0, 0
	for b := uint64(0); b < buckets; b++ {
		ptr := m.Peek64(table + bbb.Addr(b*8))
		for ptr != 0 {
			rec := bbb.Addr(ptr)
			if m.Peek64(rec+offMagic) != magicRec {
				broken++
				break
			}
			key := m.Peek64(rec + offKey)
			if m.Peek64(rec+offVal) != key^0xABCD || hash(key) != b {
				broken++
				break
			}
			records++
			ptr = m.Peek64(rec + offNext)
		}
	}
	fmt.Printf("recovery walk: %d records intact, %d broken chains\n", records, broken)
	if broken > 0 {
		log.Fatal("persist ordering violated — should be impossible under BBB")
	}
	fmt.Println("every record reachable after the crash is fully intact: strict persistency,")
	fmt.Println("zero barriers, a battery the size of a few cache lines per core.")
}
