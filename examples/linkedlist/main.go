// Linkedlist: the paper's motivating example (Figures 2 and 3), run as a
// crash-injection experiment.
//
// Figure 2's AppendNode writes the new node and then the head pointer with
// no flushes or fences. Under the PMEM baseline the head can reach NVMM
// before the node (cache eviction order), so a crash strands the head
// pointing at garbage. Figure 3 fixes it with writeBack+persistBarrier
// pairs. BBB's point is that Figure 2's code is already crash consistent —
// the bbPB persists every store in program order as it commits.
//
//	go run ./examples/linkedlist
package main

import (
	"fmt"
	"log"

	"bbb"
)

func main() {
	log.SetFlags(0)
	o := bbb.Options{
		Threads:      4,
		OpsPerThread: 400,
		// Tiny caches reorder evictions aggressively, exposing the bug.
		L1Size: 1024,
		L2Size: 4096,
	}
	const points = 15

	type row struct {
		label      string
		scheme     bbb.Scheme
		noBarriers bool
	}
	rows := []row{
		{"PMEM + barriers   (Figure 3)", bbb.SchemePMEM, false},
		{"PMEM, no barriers (Figure 2)", bbb.SchemePMEM, true},
		{"eADR, no barriers", bbb.SchemeEADR, true},
		{"BBB,  no barriers (this paper)", bbb.SchemeBBB, true},
	}

	fmt.Printf("prepending nodes, crashing at %d points, then walking the durable image:\n\n", points)
	for _, r := range rows {
		opt := o
		opt.NoBarriers = r.noBarriers
		rep, err := bbb.CrashCampaign("linkedlist", r.scheme, opt, points, 4_000, 9_000)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "recovered at every crash point"
		if rep.Inconsistent > 0 {
			f, _ := rep.FirstFailure()
			verdict = fmt.Sprintf("UNRECOVERABLE at %d/%d crash points (first: %v)",
				rep.Inconsistent, points, f.Err)
		}
		fmt.Printf("%-32s %s\n", r.label, verdict)
	}

	fmt.Println("\nconclusion: with BBB the programmer writes Figure 2's natural code and still")
	fmt.Println("gets strict persistency; with PMEM they must place every barrier correctly.")
}
