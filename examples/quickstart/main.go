// Quickstart: run one Table IV workload under each persistency scheme and
// print the comparison the paper's Figure 7 is built from.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bbb"
)

func main() {
	log.SetFlags(0)
	o := bbb.Options{
		Threads:      8,
		OpsPerThread: 300,
		// Proportionally scaled caches for a quick demo (see DESIGN.md).
		L1Size: 8 * 1024,
		L2Size: 64 * 1024,
	}

	fmt.Println("hashmap insertions, 8 threads, per scheme:")
	fmt.Printf("%-10s %14s %14s %14s %14s\n", "scheme", "cycles", "NVMM writes", "rejections", "stall cycles")
	var eadrCycles uint64
	for _, s := range []bbb.Scheme{bbb.SchemeEADR, bbb.SchemeBBB, bbb.SchemeBBBProc, bbb.SchemePMEM} {
		res, err := bbb.Run("hashmap", s, o)
		if err != nil {
			log.Fatal(err)
		}
		if s == bbb.SchemeEADR {
			eadrCycles = res.Cycles
		}
		fmt.Printf("%-10s %14d %14d %14d %14d\n", s, res.Cycles, res.NVMMWrites, res.Rejections, res.StallCycles)
	}

	res, _ := bbb.Run("hashmap", bbb.SchemeBBB, o)
	fmt.Printf("\nBBB runs at %.1f%% of eADR's time with no flushes or fences in the code —\n",
		100*float64(res.Cycles)/float64(eadrCycles))
	fmt.Println("the paper's headline: strict persistency at ~eADR performance with a tiny battery.")
}
