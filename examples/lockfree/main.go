// Lockfree: a shared, persistent Treiber stack built with the simulator's
// atomic compare-and-swap — the lock-free persistent-structure scenario the
// paper's related work discusses (§VI). Under BBB a successful CAS publish
// is durable the instant it commits, so the classic volatile Treiber push
// is already crash consistent with zero barriers.
//
// Four cores push concurrently onto ONE stack; the run is crashed mid-way;
// recovery walks the durable image and verifies that the stack is a valid
// chain of fully initialized nodes with no duplicates or fabrications.
//
//	go run ./examples/lockfree
package main

import (
	"fmt"
	"log"

	"bbb"
)

const (
	threads  = 4
	perCore  = 300
	magicRec = 0xCA5_F00D

	offMagic = 0
	offVal   = 8
	offNext  = 16
)

func main() {
	log.SetFlags(0)
	m := bbb.NewMachine(bbb.SchemeBBB, bbb.Options{Threads: threads})

	head := m.PAlloc(64)
	pools := make([]bbb.Addr, threads)
	for t := range pools {
		pools[t] = m.PAlloc(perCore * 64)
	}

	programs := make([]func(bbb.Env), threads)
	for t := 0; t < threads; t++ {
		t := t
		programs[t] = func(e bbb.Env) {
			for i := 0; i < perCore; i++ {
				node := pools[t] + bbb.Addr(i*64)
				// Initialize fully, magic last...
				e.Store(node+offVal, 8, uint64(t)<<32|uint64(i))
				e.Store(node+offMagic, 8, magicRec)
				// ...then publish with a CAS loop. No flushes, no fences.
				for {
					cur := e.Load(head, 8)
					e.Store(node+offNext, 8, cur)
					if _, ok := e.CompareAndSwap(head, 8, cur, uint64(node)); ok { //bbbvet:commit-store node
						break
					}
				}
			}
		}
	}

	finished, drained := m.RunUntilCrash(60_000, programs...)
	fmt.Printf("crash injected (finished=%v); battery drained %d lines\n", finished, drained.Lines())

	// Recovery: walk the durable stack.
	seen := map[uint64]bool{}
	perThread := make([]int, threads)
	ptr := m.Peek64(head)
	nodes := 0
	for ptr != 0 {
		rec := bbb.Addr(ptr)
		if m.Peek64(rec+offMagic) != magicRec {
			log.Fatalf("reachable node %#x not fully initialized — impossible under BBB", ptr)
		}
		val := m.Peek64(rec + offVal)
		if seen[val] {
			log.Fatalf("value %#x appears twice — lost CAS atomicity", val)
		}
		seen[val] = true
		perThread[val>>32]++
		ptr = m.Peek64(rec + offNext)
		nodes++
	}
	fmt.Printf("recovery walk: %d nodes intact, per-thread %v\n", nodes, perThread)

	// Per-thread pushes are ordered, so the surviving set per thread must
	// be a prefix of that thread's pushes (i is pushed after i-1).
	for t := 0; t < threads; t++ {
		for i := 0; i < perThread[t]; i++ {
			if !seen[uint64(t)<<32|uint64(i)] {
				log.Fatalf("thread %d: push %d missing but %d survived — ordering violated", t, i, perThread[t])
			}
		}
	}
	fmt.Println("every thread's surviving pushes form a prefix: per-core program order")
	fmt.Println("persisted exactly, with concurrent CAS publishes and zero barriers.")
}
