package bbb

import (
	"fmt"
	"io"
	"strings"

	"bbb/internal/energy"
	"bbb/internal/persistency"
	"bbb/internal/system"
)

// This file renders the paper's tables and figures as text, shared by the
// bbbench CLI and anyone embedding the library.

func rule(w io.Writer, width int) { fmt.Fprintln(w, strings.Repeat("-", width)) }

// PrintTable1 renders the qualitative scheme comparison (Table I).
func PrintTable1(w io.Writer) {
	fmt.Fprintln(w, "Table I: strict-persistency schemes compared (rows 5-6 are this repo's extensions)")
	rule(w, 106)
	fmt.Fprintf(w, "%-18s %-14s %-14s %-8s %-14s %-20s %-16s\n",
		"Scheme", "SW complexity", "Persist inst.", "HW cmplx", "Strict penalty", "Battery", "PoP")
	rule(w, 106)
	for _, s := range persistency.Schemes() {
		t := persistency.TraitsOf(s)
		fmt.Fprintf(w, "%-18s %-14s %-14s %-8s %-14s %-20s %-16s\n",
			t.Name, t.SWComplexity, t.PersistInsts, t.HWComplexity, t.StrictPenalty, t.BatteryNeeded, t.PoPLocation)
	}
}

// PrintTable3 renders the simulated system configuration (Table III).
func PrintTable3(w io.Writer) {
	cfg := system.DefaultConfig(SchemeBBB)
	fmt.Fprintln(w, "Table III: simulated system configuration")
	rule(w, 72)
	fmt.Fprintf(w, "%-12s %d cores, in-order issue + 32-entry store buffer, 2 GHz\n", "Processor", cfg.Cores)
	fmt.Fprintf(w, "%-12s private, %d KiB, %d-way, 64 B lines, %d cycles\n", "L1D",
		cfg.Hierarchy.L1Size/1024, cfg.Hierarchy.L1Ways, cfg.Hierarchy.L1Lat)
	fmt.Fprintf(w, "%-12s shared, %d MiB, %d-way, 64 B lines, %d cycles\n", "L2",
		cfg.Hierarchy.L2Size/(1024*1024), cfg.Hierarchy.L2Ways, cfg.Hierarchy.L2Lat)
	fmt.Fprintf(w, "%-12s %d GiB, %d ns read/write, %d channels\n", "DRAM",
		8, cfg.DRAM.ReadLat/2, cfg.DRAM.Channels)
	fmt.Fprintf(w, "%-12s %d GiB, %d ns read, %d ns write (ADR), %d-entry WPQ\n", "NVMM",
		8, cfg.NVMM.ReadLat/2, cfg.NVMM.WriteLat/2, cfg.NVMM.WPQEntries)
	fmt.Fprintf(w, "%-12s %d entries per core, drain threshold %.0f%%\n", "bbPB",
		cfg.BBPB.Entries, 100*cfg.BBPB.DrainThreshold)
}

// PrintTable4 renders the workload table with measured %P-stores.
func PrintTable4(w io.Writer, rows []PStoreRow) {
	fmt.Fprintln(w, "Table IV: workloads and store mix")
	rule(w, 100)
	fmt.Fprintf(w, "%-10s %-58s %12s %10s\n", "Workload", "Description", "%P (meas.)", "%P (paper)")
	rule(w, 100)
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-58s %11.1f%% %9.1f%%\n", r.Workload, r.Description, r.MeasuredPct, r.PaperPct)
	}
}

// PrintTable5 renders the drain-cost evaluation platforms (Table V).
func PrintTable5(w io.Writer) {
	fmt.Fprintln(w, "Table V: systems used to evaluate draining costs")
	rule(w, 78)
	fmt.Fprintf(w, "%-18s %8s %14s %14s %14s %9s\n", "Component", "Cores", "L1 total", "L2 total", "L3 total", "Channels")
	rule(w, 78)
	for _, p := range energy.Platforms() {
		fmt.Fprintf(w, "%-18s %8d %11.2f MiB %11.2f MiB %11.2f MiB %9d\n",
			p.Name, p.Cores,
			float64(p.L1Bytes)/(1024*1024), float64(p.L2Bytes)/(1024*1024), float64(p.L3Bytes)/(1024*1024),
			p.Channels)
	}
}

// PrintTable6 renders the drain-operation energy costs (Table VI).
func PrintTable6(w io.Writer) {
	m := energy.DefaultCostModel()
	fmt.Fprintln(w, "Table VI: estimated energy costs of draining operations")
	rule(w, 60)
	fmt.Fprintf(w, "%-40s %16s\n", "Operation", "Energy cost")
	rule(w, 60)
	fmt.Fprintf(w, "%-40s %13.0f pJ/B\n", "Accessing data from SRAM", m.SRAMAccessPJPerByte)
	fmt.Fprintf(w, "%-40s %13.3f nJ/B\n", "Moving data from L1D to NVMM", m.L1ToNVMMNJPerByte)
	fmt.Fprintf(w, "%-40s %13.3f nJ/B\n", "Moving data from bbPB to NVMM", m.L1ToNVMMNJPerByte)
	fmt.Fprintf(w, "%-40s %13.3f nJ/B\n", "Moving data from L2 to NVMM", m.L2ToNVMMNJPerByte)
	fmt.Fprintf(w, "%-40s %13.3f nJ/B\n", "Moving data from L3 to NVMM", m.L3ToNVMMNJPerByte)
}

// PrintTable7And8 renders the draining energy and time comparison.
func PrintTable7And8(w io.Writer, entries int) {
	rows := energy.DrainCosts(energy.DefaultCostModel(), entries)
	fmt.Fprintf(w, "Table VII: estimated draining energy (dirty blocks only, %d-entry bbPB)\n", entries)
	rule(w, 74)
	fmt.Fprintf(w, "%-14s %14s %14s %14s\n", "System", "eADR", "BBB", "eADR/BBB")
	rule(w, 74)
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %11.1f mJ %11.0f uJ %13.0fx\n",
			r.Platform, r.EADREnergyJ*1e3, r.BBBEnergyJ*1e6, r.EnergyRatio)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Table VIII: estimated draining time (dirty blocks only)")
	rule(w, 74)
	fmt.Fprintf(w, "%-14s %14s %14s %14s\n", "System", "eADR", "BBB", "eADR/BBB")
	rule(w, 74)
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %11.2f ms %11.1f us %13.0fx\n",
			r.Platform, r.EADRTimeS*1e3, r.BBBTimeS*1e6, r.TimeRatio)
	}
}

// PrintTable9 renders the battery-size estimates.
func PrintTable9(w io.Writer, entries int) {
	rows := energy.BatterySizes(energy.DefaultCostModel(), entries)
	fmt.Fprintf(w, "Table IX: energy-source size (full caches / full %d-entry bbPBs)\n", entries)
	rule(w, 88)
	fmt.Fprintf(w, "%-14s %-8s %-10s %16s %16s %16s\n", "System", "Scheme", "Tech", "Volume (mm^3)", "Area (mm^2)", "Ratio to core")
	rule(w, 88)
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %-8s %-10s %16.3g %16.3g %15.3gx\n",
			r.Platform, r.Scheme, r.Tech, r.VolumeMM3, r.AreaMM2, r.AreaRatioToCore)
	}
}

// PrintTable10 renders the battery-size sweep over bbPB entries.
func PrintTable10(w io.Writer) {
	rows := energy.BatterySweep(energy.DefaultCostModel())
	fmt.Fprintln(w, "Table X: BBB battery size (mm^3) vs bbPB entries")
	rule(w, 96)
	fmt.Fprintf(w, "%-10s %-14s", "Tech", "Platform")
	for _, n := range energy.TableXEntries {
		fmt.Fprintf(w, "%9d", n)
	}
	fmt.Fprintln(w)
	rule(w, 96)
	for _, tech := range []string{"SuperCap", "Li-thin"} {
		for _, plat := range []string{"Mobile Class", "Server Class"} {
			fmt.Fprintf(w, "%-10s %-14s", tech, plat)
			for _, n := range energy.TableXEntries {
				for _, r := range rows {
					if r.Tech == tech && r.Platform == plat && r.Entries == n {
						fmt.Fprintf(w, "%9.3g", r.VolumeMM3)
					}
				}
			}
			fmt.Fprintln(w)
		}
	}
}

// PrintTable11 renders the eADR-vs-BBB cost summary (Table XI).
func PrintTable11(w io.Writer) {
	fmt.Fprintln(w, "Table XI: eADR vs BBB hardware/integration costs")
	rule(w, 86)
	fmt.Fprintf(w, "%-34s %-24s %-26s\n", "Aspect", "eADR", "BBB")
	rule(w, 86)
	fmt.Fprintf(w, "%-34s %-24s %-26s\n", "Processor modifications", "None", "bbPBs + minor coherence")
	fmt.Fprintf(w, "%-34s %-24s %-26s\n", "Draining energy cost", "Very high", "Low")
	fmt.Fprintf(w, "%-34s %-24s %-26s\n", "Time needed to drain", "Very high", "Low")
	fmt.Fprintf(w, "%-34s %-24s %-26s\n", "Drive energy to components", "Needed", "Needed")
}

// PrintFig7 renders the Figure 7 bars.
func PrintFig7(w io.Writer, f Fig7Result) {
	fmt.Fprintln(w, "Figure 7: execution time (a) and NVMM writes (b), normalized to eADR")
	rule(w, 86)
	fmt.Fprintf(w, "%-10s %12s %12s | %12s %12s %14s\n",
		"Workload", "exec BBB-32", "exec BBB-1k", "wr BBB-32", "wr BBB-1k", "eADR writes")
	rule(w, 86)
	for _, r := range f.Rows {
		fmt.Fprintf(w, "%-10s %12.3f %12.3f | %12.3f %12.3f %14d\n",
			r.Workload, r.ExecBBB32, r.ExecBBB1024, r.WritesBBB32, r.WritesBBB1024, r.EADRWrites)
	}
	rule(w, 86)
	fmt.Fprintf(w, "BBB-32 exec overhead: mean %.1f%%, worst %.1f%% (paper: ~1%%, 2.8%%)\n",
		100*f.MeanExecOverheadBBB32, 100*f.WorstExecOverheadBBB32)
	fmt.Fprintf(w, "BBB-32 write overhead: mean %.1f%% (paper: 4.9%%); BBB-1024: %.1f%% (paper: <1%%)\n",
		100*f.MeanWriteOverheadBBB32, 100*f.MeanWriteOverheadBBB1024)
}

// PrintSchemeComparison renders the extended all-schemes sweep with wear
// (endurance) statistics.
func PrintSchemeComparison(w io.Writer, rows []SchemeRow) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "Extended scheme comparison on %s (with per-line NVMM wear)\n", rows[0].Workload)
	rule(w, 92)
	fmt.Fprintf(w, "%-18s %12s %12s %12s %12s %12s\n",
		"Scheme", "cycles", "NVMM writes", "rejections", "wear max", "wear mean")
	rule(w, 92)
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %12d %12d %12d %12d %12.2f\n",
			persistency.TraitsOf(r.Scheme).Name, r.Cycles, r.NVMMWrites, r.Rejections, r.WearMax, r.WearMean)
	}
}

// PrintFig8 renders the Figure 8 sensitivity sweep.
func PrintFig8(w io.Writer, pts []Fig8Point) {
	fmt.Fprintln(w, "Figure 8: sensitivity to bbPB size (geomean over workloads, normalized to 1 entry)")
	rule(w, 64)
	fmt.Fprintf(w, "%8s %16s %16s %16s\n", "Entries", "(a) rejections", "(b) exec time", "(c) drains")
	rule(w, 64)
	for _, p := range pts {
		fmt.Fprintf(w, "%8d %16.4f %16.4f %16.4f\n", p.Entries, p.Rejections, p.ExecTime, p.Drains)
	}
}
