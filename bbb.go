// Package bbb is a full-system reproduction of "BBB: Simplifying Persistent
// Programming using Battery-Backed Buffers" (Alshboul et al., HPCA 2021).
//
// It bundles an event-driven multicore simulator — out-of-order-committing
// cores with store buffers, private L1Ds, a shared inclusive L2 kept
// coherent by a directory MESI protocol, DRAM and NVMM controllers with an
// ADR write-pending queue — together with four persistency schemes layered
// on it:
//
//   - PMEM: the strict-persistency baseline needing explicit clwb+sfence,
//   - eADR: battery-backed caches (flush-on-fail over the whole hierarchy),
//   - BBB: the paper's battery-backed persist buffers beside each L1D,
//   - BBBProc: the processor-side bbPB organization used as a comparison.
//
// The package exposes the Table IV workloads (rtree, ctree, hashmap, array
// mutate/swap), crash-injection campaigns with per-structure recovery
// checkers, the §IV-C energy/battery cost model, and experiment drivers
// that regenerate every table and figure of the paper's evaluation
// (see EXPERIMENTS.md).
//
// Quick start:
//
//	res := bbb.Run("hashmap", bbb.SchemeBBB, bbb.Options{})
//	fmt.Println(res.Cycles, res.NVMMWrites)
package bbb

import (
	"fmt"
	"io"

	"bbb/internal/crashmc"
	"bbb/internal/engine"
	"bbb/internal/invariant"
	"bbb/internal/persistency"
	"bbb/internal/recovery"
	"bbb/internal/system"
	"bbb/internal/trace"
	"bbb/internal/workload"

	// Registers the pds crash workloads and the KV service tier with the
	// workload registry, so every driver resolves them by name.
	_ "bbb/internal/kvservice"
)

// Scheme selects a persistency scheme.
type Scheme = persistency.Scheme

// Cycle is a point in simulated time, in core clock cycles. Cycle-typed
// API parameters (crash points, run limits) want explicit conversions at
// the boundary — cmd/bbbvet's cyclelint enforces that cycle counts never
// mix implicitly with raw integers.
type Cycle = engine.Cycle

// The Table I schemes plus the two extension designs.
const (
	SchemePMEM    = persistency.PMEM
	SchemeEADR    = persistency.EADR
	SchemeBBB     = persistency.BBB
	SchemeBBBProc = persistency.BBBProc
	SchemeBEP     = persistency.BEP
	SchemeNVCache = persistency.NVCache
)

// ParseScheme converts a name ("pmem", "eadr", "bbb", "bbb-proc").
func ParseScheme(name string) (Scheme, error) { return persistency.ParseScheme(name) }

// Result is re-exported from the system package.
type Result = system.Result

// Options tune a run; the zero value reproduces the paper's Table III
// machine at a simulation-friendly workload scale.
type Options struct {
	// Threads is the number of cores/threads (default 8, as the paper).
	Threads int
	// OpsPerThread scales the workload (default 1000).
	OpsPerThread int
	// BBPBEntries sizes the persist buffers (default 32).
	BBPBEntries int
	// DrainThreshold is the bbPB drain occupancy threshold (default 0.75).
	DrainThreshold float64
	// NoBarriers omits PersistBarrier calls (the Figure 2 variant).
	NoBarriers bool
	// Seed fixes the workload RNG (default 1).
	Seed int64
	// L1Size/L2Size override the Table III cache sizes when nonzero, to
	// scale cache pressure with scaled-down workloads.
	L1Size, L2Size int
	// TrackWear enables per-line NVMM write-distribution accounting
	// (Result.Wear), for endurance analysis beyond Fig. 7b's totals.
	TrackWear bool
	// TraceCapacity, when positive, retains the last N microarchitectural
	// events (persist commits, bbPB traffic, coherence actions, WPQ
	// activity) for inspection via Machine.DumpTrace or bbbsim -trace.
	TraceCapacity int
	// TraceFull retains the entire event stream instead of a bounded tail
	// (needed for Perfetto export and offline provenance analysis).
	TraceFull bool
	// StorePrefetch enables request-for-ownership prefetching of buffered
	// stores' lines, recovering some of the memory-level parallelism an
	// out-of-order core would have (the in-order store-buffer drain is the
	// main simplification vs the paper's 8-wide OoO cores).
	StorePrefetch bool
	// RelaxedConsistency lets buffered stores commit to the L1D out of
	// program order (same-address order always kept) — the §III-C relaxed
	// memory-consistency case, where program-order persistency rests on
	// the battery-backed store buffer alone.
	RelaxedConsistency bool
	// Clients overrides Threads for the service-tier workloads ("kv",
	// "kv/uniform"): one client per core. Zero defers to Threads.
	Clients int
	// BatchWindow is the service tier's request-batching window in cycles
	// (how long a client holds a batch open before the durable commit).
	// Zero uses the workload default.
	BatchWindow Cycle
	// SLOTarget is the service tier's latency objective in cycles; the
	// windowed latency series counts requests over it per time window
	// (kv.lat.win and the bbbkv -timeline table). Zero uses the workload
	// default (20000 cycles, between the schemes' p50 and p95).
	SLOTarget uint64
	// Parallelism bounds how many independent simulations the experiment
	// drivers (RunFig7, RunFig8, RunTable4, the ablations, seed sweeps and
	// crash campaigns) may run concurrently. Every sweep point runs on its
	// own engine and machine and results are joined in serial index order,
	// so output is identical for any value — only wall-clock changes. 0 or
	// 1 is serial; the CLIs default their -parallel flag to the host's
	// scheduler width.
	Parallelism int
}

// workers resolves Parallelism for the sweep runner.
func (o Options) workers() int {
	if o.Parallelism > 1 {
		return o.Parallelism
	}
	return 1
}

func (o Options) params() workload.Params {
	p := workload.DefaultParams()
	if o.Threads > 0 {
		p.Threads = o.Threads
	}
	p.OpsPerThread = 1000
	if o.OpsPerThread > 0 {
		p.OpsPerThread = o.OpsPerThread
	}
	if o.Seed != 0 {
		p.Seed = o.Seed
	}
	p.NoBarriers = o.NoBarriers
	if o.Clients > 0 {
		p.Threads = o.Clients
	}
	p.BatchWindow = o.BatchWindow
	p.SLOTarget = o.SLOTarget
	return p
}

func (o Options) sysConfig(s Scheme) system.Config {
	cfg := system.DefaultConfig(s)
	if o.BBPBEntries > 0 {
		cfg.BBPB.Entries = o.BBPBEntries
	}
	if o.DrainThreshold > 0 {
		cfg.BBPB.DrainThreshold = o.DrainThreshold
	}
	if o.L1Size > 0 {
		cfg.Hierarchy.L1Size = o.L1Size
	}
	if o.L2Size > 0 {
		cfg.Hierarchy.L2Size = o.L2Size
	}
	cfg.TrackWear = o.TrackWear
	cfg.TraceCapacity = o.TraceCapacity
	cfg.TraceFull = o.TraceFull
	cfg.Core.StorePrefetch = o.StorePrefetch
	cfg.Core.RelaxedSBDrain = o.RelaxedConsistency
	return cfg
}

// Workloads returns the Table IV workload names, in the paper's order.
func Workloads() []string {
	var names []string
	for _, w := range workload.Registry() {
		names = append(names, w.Name())
	}
	return names
}

// Run executes one workload under one scheme to completion.
func Run(workloadName string, s Scheme, o Options) (Result, error) {
	w, err := workload.ByName(workloadName)
	if err != nil {
		return Result{}, err
	}
	return workload.Run(w, s, o.sysConfig(s), o.params()), nil
}

// MustRun is Run for callers with vetted names (benchmarks, examples).
func MustRun(workloadName string, s Scheme, o Options) Result {
	r, err := Run(workloadName, s, o)
	if err != nil {
		panic(err)
	}
	return r
}

// RunCompiled is Run on the compiled-IR path: the workload's per-thread
// programs execute as micro-op streams interpreted inline from the event
// kernel — no goroutine or channel handoff per access — and produce results
// byte-identical to Run's (the `make ir-equiv` gate). Errors if the
// workload has no compiled form (every Table IV row, the linked list and
// the WAL have one).
func RunCompiled(workloadName string, s Scheme, o Options) (Result, error) {
	w, err := workload.ByName(workloadName)
	if err != nil {
		return Result{}, err
	}
	cw, ok := workload.Compiled(w)
	if !ok {
		return Result{}, fmt.Errorf("bbb: workload %q has no compiled form", workloadName)
	}
	return workload.RunCompiled(cw, s, o.sysConfig(s), o.params()), nil
}

// MustRunCompiled is RunCompiled for callers with vetted names.
func MustRunCompiled(workloadName string, s Scheme, o Options) Result {
	r, err := RunCompiled(workloadName, s, o)
	if err != nil {
		panic(err)
	}
	return r
}

// RunChecked is Run with the runtime invariant auditor armed: every
// checkPeriod cycles (default 1000 when zero) the machine's coherence and
// persist-buffer invariants are verified between engine events — see
// internal/invariant — and the first violation is returned as the error
// alongside the (tainted) result. bbbsim's -check flag uses it.
func RunChecked(workloadName string, s Scheme, o Options, checkPeriod Cycle) (Result, error) {
	wl, err := workload.ByName(workloadName)
	if err != nil {
		return Result{}, err
	}
	if checkPeriod == 0 {
		checkPeriod = 1000
	}
	sys, progs := workload.Build(wl, s, o.sysConfig(s), o.params())
	defer sys.Shutdown()
	allDone := func() bool {
		for _, c := range sys.Cores {
			if !c.Done() {
				return false
			}
		}
		return true
	}
	var violation error
	invariant.Attach(sys, checkPeriod, allDone, func(err error) { violation = err })
	res := sys.Run(progs)
	workload.FoldServiceMetrics(wl, &res)
	if violation != nil {
		return res, fmt.Errorf("invariant violation mid-run: %w", violation)
	}
	if err := invariant.CheckSystem(sys); err != nil {
		return res, fmt.Errorf("invariant violation after run: %w", err)
	}
	return res, nil
}

// RunTraced is Run plus a dump of the retained microarchitectural trace to
// w after the run. Set Options.TraceCapacity to bound the tail kept.
func RunTraced(workloadName string, s Scheme, o Options, w io.Writer) (Result, error) {
	wl, err := workload.ByName(workloadName)
	if err != nil {
		return Result{}, err
	}
	if o.TraceCapacity == 0 {
		o.TraceCapacity = 4096
	}
	sys, progs := workload.Build(wl, s, o.sysConfig(s), o.params())
	defer sys.Shutdown()
	res := sys.Run(progs)
	workload.FoldServiceMetrics(wl, &res)
	if rec := sys.Trace(); rec != nil && w != nil {
		rec.Dump(w)
	}
	return res, nil
}

// RunStreaming is Run with full tracing on: every microarchitectural event
// streams to w as a JSON line while the run executes, and the result
// carries the histogram/gauge metrics and durability provenance
// (Result.Metrics, Result.DurabilitySummary). Use cmd/bbbtrace to filter,
// summarize or export the stream.
func RunStreaming(workloadName string, s Scheme, o Options, w io.Writer) (Result, error) {
	wl, err := workload.ByName(workloadName)
	if err != nil {
		return Result{}, err
	}
	o.TraceFull = true
	cfg := o.sysConfig(s)
	sink := trace.NewJSONL(w)
	cfg.TraceSink = sink
	sys, progs := workload.Build(wl, s, cfg, o.params())
	defer sys.Shutdown()
	res := sys.Run(progs)
	workload.FoldServiceMetrics(wl, &res)
	if err := sys.Trace().Flush(); err != nil {
		return res, fmt.Errorf("bbb: flushing trace stream: %w", err)
	}
	return res, nil
}

// CrashTraced runs workloadName under s with full tracing, crashes it at
// crashCycle and performs the scheme's flush-on-fail, streaming every
// event — including the crash-drain ones — to w as JSON lines. The result
// shows, via provenance, which visible stores only became durable because
// of the battery (and, for volatile designs, which never did).
func CrashTraced(workloadName string, s Scheme, o Options, crashCycle Cycle, w io.Writer) (Result, error) {
	wl, err := workload.ByName(workloadName)
	if err != nil {
		return Result{}, err
	}
	o.TraceFull = true
	cfg := o.sysConfig(s)
	sink := trace.NewJSONL(w)
	cfg.TraceSink = sink
	sys, progs := workload.Build(wl, s, cfg, o.params())
	defer sys.Shutdown()
	sys.RunUntil(crashCycle, progs)
	sys.Crash()
	res := sys.ResultAfterCrash()
	if err := sys.Trace().Flush(); err != nil {
		return res, fmt.Errorf("bbb: flushing trace stream: %w", err)
	}
	return res, nil
}

// CrashCampaign sweeps crash points over a workload run and checks the
// durable image at each; see the recovery package for details.
func CrashCampaign(workloadName string, s Scheme, o Options, points int, first, step engine.Cycle) (recovery.Report, error) {
	w, err := workload.ByName(workloadName)
	if err != nil {
		return recovery.Report{}, err
	}
	cc := recovery.CampaignConfig{
		Workload:   w,
		Scheme:     s,
		System:     o.sysConfig(s),
		Params:     o.params(),
		FirstCrash: first,
		Step:       step,
		Points:     points,
		Parallel:   o.workers(),
	}
	return cc.Run(), nil
}

// MCBounds prune a model-checking campaign's per-point enumeration; the
// zero value uses the crashmc defaults.
type MCBounds = crashmc.Bounds

// MCReport aggregates a model-checking campaign.
type MCReport = crashmc.Report

// MCWitness is a minimized, replayable crash-consistency violation.
type MCWitness = crashmc.Witness

// ModelCheck explores every reachable durable image at a sweep of crash
// points: where CrashCampaign validates the one deterministic flush-on-
// fail image per crash, ModelCheck enumerates the scheme's full legal
// survival-set space (within b) and checks recovery against each image.
// See internal/crashmc and docs/ARCHITECTURE.md §10.
func ModelCheck(workloadName string, s Scheme, o Options, points int, first, step engine.Cycle, b MCBounds) (MCReport, error) {
	w, err := workload.ByName(workloadName)
	if err != nil {
		return MCReport{}, err
	}
	mc := crashmc.Config{
		Workload:   w,
		Scheme:     s,
		System:     o.sysConfig(s),
		Params:     o.params(),
		FirstCrash: first,
		Step:       step,
		Points:     points,
		Parallel:   o.workers(),
		Bounds:     b,
	}
	return mc.Run(), nil
}

// ParseWitness decodes a witness produced by bbbmc -witness-out.
func ParseWitness(data []byte) (*MCWitness, error) { return crashmc.ParseWitness(data) }

// ReplayWitness rebuilds the witnessed machine and re-checks the exact
// surviving-write subset the witness pins (bbbmc -repro).
func ReplayWitness(w *MCWitness) (crashmc.ReplayOutcome, error) { return crashmc.Replay(w) }

// SchemeTraits returns the Table I qualitative row for a scheme.
func SchemeTraits(s Scheme) persistency.Traits { return persistency.TraitsOf(s) }

// GuaranteesConsistency reports whether a scheme promises crash-consistent
// recovery for the given program variant (see recovery.GuaranteesConsistency):
// inconsistency under a guaranteeing combination is a simulator bug.
func GuaranteesConsistency(s Scheme, barriers bool) bool {
	return recovery.GuaranteesConsistency(s, barriers)
}

// Version identifies the reproduction, not the paper.
const Version = "1.0.0"

func init() {
	// Guard against the internal registry drifting from Table IV.
	if len(workload.Registry()) != 7 {
		panic(fmt.Sprintf("bbb: Table IV registry has %d workloads", len(workload.Registry())))
	}
}
