// Command bbbsim runs workloads under persistency schemes on the simulated
// Table III machine and prints each run's statistics.
//
// The -workload and -scheme flags accept comma-separated lists; the cross
// product fans out across -parallel concurrent simulations and the result
// blocks print in (workload, scheme) order regardless of parallelism.
//
// Usage:
//
//	bbbsim -workload hashmap -scheme bbb -ops 1000
//	bbbsim -workload rtree -scheme pmem -no-barriers
//	bbbsim -workload mutateC -scheme bbb -entries 8 -verbose
//	bbbsim -workload rtree,hashmap -scheme pmem,eadr,bbb -parallel 8
//
// Campaign mode runs a checkpointed resumable sweep against a run ledger
// (see internal/obs): every completed point is recorded as it finishes, a
// killed campaign resumes where it stopped, and the final report is
// byte-identical to an uninterrupted run at any -parallel setting.
//
//	bbbsim -campaign frontier -ledger runs/
//	bbbsim -campaign frontier -ledger runs/ -max-points 6   # stop early...
//	bbbsim -campaign frontier -ledger runs/                 # ...and resume
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"bbb"
	"bbb/internal/obs"
	"bbb/internal/stats"
	"bbb/internal/sweep"
)

type combo struct {
	workload string
	scheme   bbb.Scheme
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bbbsim: ")
	var (
		wl         = flag.String("workload", "hashmap", "workload (comma-separated list fans out): "+strings.Join(bbb.Workloads(), ", ")+", linkedlist")
		scheme     = flag.String("scheme", "bbb", "persistency scheme (comma-separated list fans out): pmem, eadr, bbb, bbb-proc")
		ops        = flag.Int("ops", 1000, "operations per thread")
		threads    = flag.Int("threads", 8, "threads/cores")
		entries    = flag.Int("entries", 32, "bbPB entries per core")
		threshold  = flag.Float64("threshold", 0.75, "bbPB drain occupancy threshold")
		noBarriers = flag.Bool("no-barriers", false, "omit persist barriers (the Figure 2 variant)")
		clients    = flag.Int("clients", 0, "override -threads for the service-tier workloads (kv, kv/uniform)")
		window     = flag.Int64("batch-window", 0, "service-tier request-batching window in cycles (0 = workload default)")
		seed       = flag.Int64("seed", 1, "workload RNG seed")
		parallel   = flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent simulations for workload/scheme lists (1 = serial; output is identical either way)")
		verbose    = flag.Bool("verbose", false, "dump all component counters")
		traceN     = flag.Int("trace", 0, "dump the last N microarchitectural events after the run")
		traceOut   = flag.String("trace-out", "", "stream the full event trace as JSON lines to this file (see cmd/bbbtrace)")
		check      = flag.Bool("check", false, "audit coherence and bbPB invariants every 1000 cycles (see internal/invariant)")
		compiled   = flag.Bool("compiled", false, "run workloads through the compiled IR interpreter instead of goroutine drivers (identical results; see internal/ir)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the simulations to this file")
		memProfile = flag.String("memprofile", "", "write an allocation profile taken after the simulations to this file")

		campaign   = flag.String("campaign", "", "run a ledger-backed resumable campaign instead of single simulations (frontier)")
		ledgerDir  = flag.String("ledger", "", "run-ledger directory for -campaign (required; the checkpoint store)")
		maxPoints  = flag.Int("max-points", 0, "stop the campaign after N fresh points (0 = run to completion); re-run to resume")
		gridEnt    = flag.String("grid-entries", "", "frontier campaign bbPB sizes, comma-separated (default 8,16,32,64)")
		gridThresh = flag.String("grid-thresholds", "", "frontier campaign drain thresholds, comma-separated (default 0.25,0.5,0.75)")
		budgets    = flag.String("budgets-mm3", "", "frontier battery volumes in mm^3, comma-separated (default 1,5,20,100)")
		tech       = flag.String("tech", "supercap", "frontier battery technology: supercap or li-thin")
		platform   = flag.String("platform", "mobile", "frontier drain pricing platform: mobile or server")
	)
	flag.Parse()

	if *campaign != "" {
		runCampaign(*campaign, campaignConfig{
			ledgerDir: *ledgerDir, maxPoints: *maxPoints,
			gridEntries: *gridEnt, gridThresholds: *gridThresh,
			budgets: *budgets, tech: *tech, platform: *platform,
			workload: *wl,
		}, bbb.Options{
			Threads:      *threads,
			OpsPerThread: *ops,
			NoBarriers:   *noBarriers,
			Seed:         *seed,
			Clients:      *clients,
			BatchWindow:  bbb.Cycle(*window),
			Parallelism:  *parallel,
		})
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				log.Fatal(err)
			}
		}()
	}

	workloads := strings.Split(*wl, ",")
	var combos []combo
	for _, w := range workloads {
		for _, name := range strings.Split(*scheme, ",") {
			s, err := bbb.ParseScheme(strings.TrimSpace(name))
			if err != nil {
				log.Fatal(err)
			}
			combos = append(combos, combo{strings.TrimSpace(w), s})
		}
	}

	o := bbb.Options{
		Threads:        *threads,
		OpsPerThread:   *ops,
		BBPBEntries:    *entries,
		DrainThreshold: *threshold,
		NoBarriers:     *noBarriers,
		Seed:           *seed,
		Clients:        *clients,
		BatchWindow:    bbb.Cycle(*window),
	}

	if *check || *traceN > 0 || *traceOut != "" {
		if *compiled {
			log.Fatal("-compiled cannot combine with -check, -trace or -trace-out (those harnesses drive the goroutine path)")
		}
		if len(combos) > 1 {
			log.Fatal("-check, -trace and -trace-out need a single workload/scheme combination")
		}
		exclusive := 0
		for _, on := range []bool{*check, *traceN > 0, *traceOut != ""} {
			if on {
				exclusive++
			}
		}
		if exclusive > 1 {
			log.Fatal("-check, -trace and -trace-out are mutually exclusive")
		}
		c := combos[0]
		var (
			res bbb.Result
			err error
		)
		switch {
		case *check:
			res, err = bbb.RunChecked(c.workload, c.scheme, o, 0)
		case *traceOut != "":
			var f *os.File
			f, err = os.Create(*traceOut)
			if err != nil {
				log.Fatal(err)
			}
			res, err = bbb.RunStreaming(c.workload, c.scheme, o, f)
			if err == nil {
				err = f.Close()
			}
		default:
			o.TraceCapacity = *traceN
			fmt.Printf("--- last %d microarchitectural events ---\n", *traceN)
			res, err = bbb.RunTraced(c.workload, c.scheme, o, os.Stdout)
			fmt.Println("---")
		}
		if err != nil {
			log.Fatal(err)
		}
		printResult(c, o, res, *verbose)
		return
	}

	type outcome struct {
		res bbb.Result
		err error
	}
	run := bbb.Run
	if *compiled {
		run = bbb.RunCompiled
	}
	results := sweep.Map(*parallel, len(combos), func(i int) outcome {
		r, err := run(combos[i].workload, combos[i].scheme, o)
		return outcome{r, err}
	})
	for i, out := range results {
		if out.err != nil {
			log.Fatal(out.err)
		}
		if i > 0 {
			fmt.Println()
		}
		printResult(combos[i], o, out.res, *verbose)
	}
}

type campaignConfig struct {
	ledgerDir      string
	maxPoints      int
	gridEntries    string
	gridThresholds string
	budgets        string
	tech           string
	platform       string
	workload       string
}

// runCampaign drives a resumable sweep. The deterministic report goes to
// stdout (two completed runs compare with cmp); progress and resume notes
// go to stderr via log.
func runCampaign(name string, cc campaignConfig, o bbb.Options) {
	if cc.ledgerDir == "" {
		log.Fatal("-campaign needs -ledger (the checkpoint directory)")
	}
	if strings.Contains(cc.workload, ",") {
		log.Fatal("-campaign sweeps its own grid; give a single -workload")
	}
	ledger, err := obs.Open(cc.ledgerDir)
	if err != nil {
		log.Fatal(err)
	}
	switch name {
	case "frontier":
		res, err := bbb.RunFrontierCampaign(o, bbb.FrontierConfig{
			Workload:   cc.workload,
			Entries:    parseInts(cc.gridEntries),
			Thresholds: parseFloats(cc.gridThresholds),
			BudgetsMM3: parseFloats(cc.budgets),
			Tech:       cc.tech,
			Platform:   cc.platform,
			MaxPoints:  cc.maxPoints,
			Ledger:     ledger,
			Host:       hostInfo(),
			Clock:      func() int64 { return time.Now().UnixNano() },
			Progress:   os.Stderr,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(res.Report())
	default:
		log.Fatalf("unknown campaign %q (want frontier)", name)
	}
}

// hostInfo captures machine provenance for ledger host stamps. This lives
// in cmd (not internal/obs) on purpose: detlint keeps wall-clock and
// host-environment probes out of the internal packages.
func hostInfo() *obs.HostInfo {
	host, _ := os.Hostname()
	return &obs.HostInfo{
		Hostname: host,
		GOOS:     runtime.GOOS,
		GOARCH:   runtime.GOARCH,
		CPUs:     runtime.NumCPU(),
		UnixNS:   time.Now().UnixNano(),
	}
}

func parseInts(s string) []int {
	if s == "" {
		return nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			log.Fatalf("bad integer list %q: %v", s, err)
		}
		out = append(out, v)
	}
	return out
}

func parseFloats(s string) []float64 {
	if s == "" {
		return nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			log.Fatalf("bad number list %q: %v", s, err)
		}
		out = append(out, v)
	}
	return out
}

func printResult(c combo, o bbb.Options, res bbb.Result, verbose bool) {
	threads := o.Threads
	if o.Clients > 0 {
		threads = o.Clients
	}
	fmt.Printf("workload            %s (%d threads x %d ops)\n", c.workload, threads, o.OpsPerThread)
	fmt.Printf("scheme              %s\n", c.scheme)
	fmt.Printf("execution cycles    %d (%.3f ms at 2 GHz)\n", res.Cycles, float64(res.Cycles)/2e6)
	fmt.Printf("stores              %d (%d persisting, %.1f%%)\n",
		res.Stores, res.PersistingStores, 100*float64(res.PersistingStores)/float64(res.Stores))
	fmt.Printf("loads               %d\n", res.Loads)
	fmt.Printf("NVMM writes         %d\n", res.NVMMWrites)
	fmt.Printf("bbPB rejections     %d\n", res.Rejections)
	fmt.Printf("bbPB drains         %d (%d forced by LLC inclusion)\n", res.Drains, res.ForcedDrains)
	fmt.Printf("skipped writebacks  %d\n", res.SkippedWritebacks)
	fmt.Printf("SB stall cycles     %d\n", res.StallCycles)
	fmt.Printf("dirty cache lines   %.1f%% (paper assumes 44.9%% for eADR estimates)\n", 100*res.DirtyFraction)
	if res.Metrics != nil {
		fmt.Printf("durability          %s\n", res.DurabilitySummary())
		fmt.Printf("provenance          %d stores resolved durable, %d never observed durable\n",
			res.Counters.Get("persist.resolved_stores"), res.Counters.Get("persist.unresolved_stores"))
	}
	if verbose {
		fmt.Println("\ncomponent counters:")
		fmt.Fprint(os.Stdout, res.Counters.StringWith(stats.Glossary))
		if res.Metrics != nil {
			fmt.Println("\nhistograms and gauges:")
			fmt.Fprint(os.Stdout, res.Metrics.StringWith(stats.Glossary))
		}
	}
}
