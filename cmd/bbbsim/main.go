// Command bbbsim runs one workload under one persistency scheme on the
// simulated Table III machine and prints the run's statistics.
//
// Usage:
//
//	bbbsim -workload hashmap -scheme bbb -ops 1000
//	bbbsim -workload rtree -scheme pmem -no-barriers
//	bbbsim -workload mutateC -scheme bbb -entries 8 -verbose
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"bbb"
	"bbb/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bbbsim: ")
	var (
		wl         = flag.String("workload", "hashmap", "workload: "+strings.Join(bbb.Workloads(), ", ")+", linkedlist")
		scheme     = flag.String("scheme", "bbb", "persistency scheme: pmem, eadr, bbb, bbb-proc")
		ops        = flag.Int("ops", 1000, "operations per thread")
		threads    = flag.Int("threads", 8, "threads/cores")
		entries    = flag.Int("entries", 32, "bbPB entries per core")
		threshold  = flag.Float64("threshold", 0.75, "bbPB drain occupancy threshold")
		noBarriers = flag.Bool("no-barriers", false, "omit persist barriers (the Figure 2 variant)")
		seed       = flag.Int64("seed", 1, "workload RNG seed")
		verbose    = flag.Bool("verbose", false, "dump all component counters")
		traceN     = flag.Int("trace", 0, "dump the last N microarchitectural events after the run")
		check      = flag.Bool("check", false, "audit coherence and bbPB invariants every 1000 cycles (see internal/invariant)")
	)
	flag.Parse()

	s, err := bbb.ParseScheme(*scheme)
	if err != nil {
		log.Fatal(err)
	}
	o := bbb.Options{
		Threads:        *threads,
		OpsPerThread:   *ops,
		BBPBEntries:    *entries,
		DrainThreshold: *threshold,
		NoBarriers:     *noBarriers,
		Seed:           *seed,
	}
	var res bbb.Result
	switch {
	case *check && *traceN > 0:
		log.Fatal("-check and -trace are mutually exclusive")
	case *check:
		res, err = bbb.RunChecked(*wl, s, o, 0)
	case *traceN > 0:
		o.TraceCapacity = *traceN
		fmt.Printf("--- last %d microarchitectural events ---\n", *traceN)
		res, err = bbb.RunTraced(*wl, s, o, os.Stdout)
		fmt.Println("---")
	default:
		res, err = bbb.Run(*wl, s, o)
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload            %s (%d threads x %d ops)\n", *wl, *threads, *ops)
	fmt.Printf("scheme              %s\n", s)
	fmt.Printf("execution cycles    %d (%.3f ms at 2 GHz)\n", res.Cycles, float64(res.Cycles)/2e6)
	fmt.Printf("stores              %d (%d persisting, %.1f%%)\n",
		res.Stores, res.PersistingStores, 100*float64(res.PersistingStores)/float64(res.Stores))
	fmt.Printf("loads               %d\n", res.Loads)
	fmt.Printf("NVMM writes         %d\n", res.NVMMWrites)
	fmt.Printf("bbPB rejections     %d\n", res.Rejections)
	fmt.Printf("bbPB drains         %d (%d forced by LLC inclusion)\n", res.Drains, res.ForcedDrains)
	fmt.Printf("skipped writebacks  %d\n", res.SkippedWritebacks)
	fmt.Printf("SB stall cycles     %d\n", res.StallCycles)
	fmt.Printf("dirty cache lines   %.1f%% (paper assumes 44.9%% for eADR estimates)\n", 100*res.DirtyFraction)
	if *verbose {
		fmt.Println("\ncomponent counters:")
		fmt.Fprint(os.Stdout, res.Counters.StringWith(stats.Glossary))
	}
}
