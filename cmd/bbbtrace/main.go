// Command bbbtrace records, filters, summarizes and exports the
// simulator's microarchitectural event traces.
//
// The on-disk format is JSON lines (one event per line, cycle-stamped —
// byte-identical across runs of the same seed); `export` converts a trace
// to the Chrome trace-event JSON that Perfetto (https://ui.perfetto.dev)
// and chrome://tracing load, with per-core instant tracks and counter
// tracks for bbPB occupancy, WPQ depth and forced drains.
//
// Usage:
//
//	bbbtrace record -workload hashmap -scheme bbb -o trace.jsonl
//	bbbtrace record -workload hashmap -scheme bbb -crash 20000 -o t.jsonl
//	bbbtrace filter -i trace.jsonl -o drains.jsonl -kind pb-drain
//	bbbtrace filter -i trace.jsonl -core 3 -from 1000 -to 2000
//	bbbtrace summarize -i trace.jsonl -scheme bbb
//	bbbtrace export -i trace.jsonl -o trace.json
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"bbb"
	"bbb/internal/stats"
	"bbb/internal/system"
	"bbb/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bbbtrace: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "filter":
		filter(os.Args[2:])
	case "summarize":
		summarize(os.Args[2:])
	case "export":
		export(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: bbbtrace <record|filter|summarize|export> [flags]
  record     run a workload with full tracing, writing JSON lines
  filter     select events by kind, core and cycle range
  summarize  per-kind counts and the durability-provenance summary
  export     convert to Perfetto / chrome://tracing JSON
run "bbbtrace <subcommand> -h" for flags`)
	os.Exit(2)
}

// record runs one workload/scheme with the full event stream going to -o.
func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	var (
		wl      = fs.String("workload", "hashmap", "workload to trace")
		scheme  = fs.String("scheme", "bbb", "persistency scheme")
		ops     = fs.Int("ops", 200, "operations per thread")
		threads = fs.Int("threads", 4, "threads/cores")
		seed    = fs.Int64("seed", 1, "workload RNG seed")
		crash   = fs.Uint64("crash", 0, "crash at this cycle (0 = run to completion)")
		out     = fs.String("o", "trace.jsonl", "output JSONL path")
	)
	fs.Parse(args)
	s, err := bbb.ParseScheme(*scheme)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	o := bbb.Options{Threads: *threads, OpsPerThread: *ops, Seed: *seed}
	var res bbb.Result
	if *crash > 0 {
		res, err = bbb.CrashTraced(*wl, s, o, bbb.Cycle(*crash), f)
	} else {
		res, err = bbb.RunStreaming(*wl, s, o, f)
	}
	if err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %s: %s/%s, %d cycles\n", *out, *wl, s, res.Cycles)
	fmt.Println(res.DurabilitySummary())
	fmt.Printf("resolved stores     %d\n", res.Counters.Get("persist.resolved_stores"))
	fmt.Printf("unresolved stores   %d\n", res.Counters.Get("persist.unresolved_stores"))
}

func readTrace(path string) []trace.Event {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	evs, err := trace.ParseJSONL(f)
	if err != nil {
		log.Fatal(err)
	}
	return evs
}

// filter narrows a trace by kind, core and cycle range.
func filter(args []string) {
	fs := flag.NewFlagSet("filter", flag.ExitOnError)
	var (
		in   = fs.String("i", "trace.jsonl", "input JSONL path")
		out  = fs.String("o", "", "output JSONL path (default stdout)")
		kind = fs.String("kind", "", "keep only this event kind (e.g. pb-drain)")
		core = fs.Int("core", -2, "keep only this core (-1 = machine-wide events)")
		from = fs.Uint64("from", 0, "keep events at or after this cycle")
		to   = fs.Uint64("to", ^uint64(0), "keep events at or before this cycle")
	)
	fs.Parse(args)
	evs := readTrace(*in)
	if *kind != "" {
		k, ok := trace.ParseKind(*kind)
		if !ok {
			log.Fatalf("unknown kind %q", *kind)
		}
		evs = trace.EventsByKind(evs, k)
	}
	if *core >= -1 {
		evs = trace.EventsByCore(evs, *core)
	}
	evs = trace.EventsInRange(evs, *from, *to)
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	sink := trace.NewJSONL(w)
	for _, e := range evs {
		sink.Write(e)
	}
	if err := sink.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "kept %d events\n", len(evs))
}

// summarize prints per-kind counts, the trace's cycle span, and — when a
// scheme is given — replays durability provenance offline over the stream.
func summarize(args []string) {
	fs := flag.NewFlagSet("summarize", flag.ExitOnError)
	var (
		in     = fs.String("i", "trace.jsonl", "input JSONL path")
		scheme = fs.String("scheme", "", "replay durability provenance for this scheme's persist point")
	)
	fs.Parse(args)
	evs := readTrace(*in)
	if len(evs) == 0 {
		fmt.Println("empty trace")
		return
	}
	fmt.Printf("%d events, cycles %d..%d\n", len(evs), evs[0].Cycle, evs[len(evs)-1].Cycle)
	counts := trace.CountKinds(evs)
	for k := trace.KindNone + 1; k <= trace.KindCrashDrain; k++ {
		if counts[k] > 0 {
			fmt.Printf("  %-16s %d\n", k, counts[k])
		}
	}
	if *scheme == "" {
		return
	}
	s, err := bbb.ParseScheme(*scheme)
	if err != nil {
		log.Fatal(err)
	}
	m := stats.NewMetrics()
	prov := trace.NewProvenance(system.DurabilityPointFor(s), m)
	for _, e := range evs {
		prov.Write(e)
	}
	fmt.Printf("durability point    %s\n", prov.Point())
	if h := m.Hist("persist.vis_to_dur_gap"); h != nil {
		fmt.Printf("vis->dur gap        %s\n", h.Summary())
	}
	fmt.Printf("resolved stores     %d\n", prov.Resolved())
	fmt.Printf("unresolved stores   %d\n", prov.Unresolved())
}

// export converts a JSONL trace into Perfetto/Chrome trace-event JSON.
func export(args []string) {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	var (
		in      = fs.String("i", "trace.jsonl", "input JSONL path")
		out     = fs.String("o", "trace.json", "output Perfetto JSON path")
		process = fs.String("process", "bbbsim", "process name shown in the Perfetto UI")
	)
	fs.Parse(args)
	evs := readTrace(*in)
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := trace.WritePerfetto(f, evs, trace.PerfettoMeta{Process: *process}); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exported %d events to %s (load at https://ui.perfetto.dev)\n", len(evs), *out)
}
