// Command bbbkv drives the multi-client KV service tier
// (internal/kvservice) across persistency schemes and reports the
// service-level numbers the scheme comparison turns on: throughput, the
// request-latency percentiles, and the SLO burn rate (the fraction of
// requests slower than the latency objective). Where bbbsim reports what
// the machine did (cycles, drains, NVMM writes), bbbkv reports what a
// client of the service would feel — the paper's argument lands as a
// tail-latency gap between BBB and the explicit-flush PMEM baseline at the
// same offered load.
//
// The -workload and -scheme flags accept comma-separated lists; the cross
// product fans out over -parallel concurrent simulations (internal/sweep),
// and rows print in (workload, scheme) order regardless of parallelism.
//
// -timeline renders latency over time: per-window p50/p99, SLO violations
// and burn per scheme, from the kv.lat.win windowed series. -perfetto-out
// exports the same series (plus every gauge) as Perfetto counter tracks;
// -trace-out streams the full microarchitectural event trace (single
// workload/scheme combination only, like bbbsim).
//
// Usage:
//
//	bbbkv
//	bbbkv -scheme pmem,bbb -clients 8 -ops 500
//	bbbkv -workload kv/uniform -batch-window 1200
//	bbbkv -scheme pmem,bbb -timeline -slo 15000
//	bbbkv -workload kv -scheme bbb -perfetto-out kv.json
//	bbbkv -workload kv -scheme bbb -trace-out kv-events.jsonl
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"

	"bbb"
	"bbb/internal/stats"
	"bbb/internal/sweep"
	"bbb/internal/trace"
)

type combo struct {
	workload string
	scheme   bbb.Scheme
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bbbkv: ")
	var (
		wl          = flag.String("workload", "kv", "service workload (comma-separated list fans out): kv (zipfian keys), kv/uniform")
		scheme      = flag.String("scheme", "pmem,eadr,bbb,bbb-proc,bep,nvcache", "persistency scheme (comma-separated list fans out)")
		clients     = flag.Int("clients", 4, "concurrent service clients (one core each)")
		ops         = flag.Int("ops", 400, "requests per client")
		window      = flag.Int64("batch-window", 0, "request-batching window in cycles (0 = workload default)")
		slo         = flag.Uint64("slo", 0, "latency objective in cycles for SLO burn accounting (0 = workload default, 20000)")
		seed        = flag.Int64("seed", 1, "schedule RNG seed")
		parallel    = flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent simulations for workload/scheme lists (1 = serial; output is identical either way)")
		verbose     = flag.Bool("verbose", false, "dump every kv.* histogram per run")
		timeline    = flag.Bool("timeline", false, "print the per-window latency-over-time table per run (p50/p99/SLO burn)")
		perfettoOut = flag.String("perfetto-out", "", "write gauge and windowed series as Perfetto counter tracks to this file (single workload/scheme combination)")
		traceOut    = flag.String("trace-out", "", "stream the full event trace as JSON lines to this file (single workload/scheme combination; see cmd/bbbtrace)")
	)
	flag.Parse()

	var combos []combo
	for _, w := range strings.Split(*wl, ",") {
		for _, name := range strings.Split(*scheme, ",") {
			s, err := bbb.ParseScheme(strings.TrimSpace(name))
			if err != nil {
				log.Fatal(err)
			}
			combos = append(combos, combo{strings.TrimSpace(w), s})
		}
	}

	o := bbb.Options{
		Clients:      *clients,
		OpsPerThread: *ops,
		Seed:         *seed,
		BatchWindow:  bbb.Cycle(*window),
		SLOTarget:    *slo,
	}

	if (*perfettoOut != "" || *traceOut != "") && len(combos) > 1 {
		log.Fatal("-perfetto-out and -trace-out need a single workload/scheme combination")
	}

	type outcome struct {
		res bbb.Result
		err error
	}
	run := func(i int) outcome {
		c := combos[i]
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				return outcome{err: err}
			}
			r, err := bbb.RunStreaming(c.workload, c.scheme, o, f)
			if err == nil {
				err = f.Close()
			}
			return outcome{r, err}
		}
		r, err := bbb.Run(c.workload, c.scheme, o)
		return outcome{r, err}
	}
	results := sweep.Map(*parallel, len(combos), run)

	fmt.Printf("%d clients x %d requests, batch window %s, seed %d, SLO %s\n\n",
		*clients, *ops, windowLabel(*window), *seed, sloLabel(*slo))
	fmt.Printf("%-12s %-9s %10s %9s %9s %9s %9s %7s %9s %7s\n",
		"workload", "scheme", "cycles", "kreq/s", "lat p50", "lat p95", "lat p99", "batch", "queue p50", "burn%")
	for i, out := range results {
		if out.err != nil {
			log.Fatal(out.err)
		}
		c := combos[i]
		res := out.res
		if res.Metrics == nil || res.Metrics.Hist("kv.lat") == nil {
			log.Fatalf("%s is not a service workload (no kv.lat histogram); bbbkv drives kv and kv/uniform", c.workload)
		}
		lat := res.Metrics.Hist("kv.lat")
		win := res.Metrics.Windowed("kv.lat.win")
		reqs := float64(*clients * *ops)
		// Cycles are 2 GHz (Table III), so kreq/s = reqs / (cycles/2e9) / 1e3.
		kreqs := reqs / (float64(res.Cycles) / 2e9) / 1e3
		burn := 100 * float64(win.OverSLO()) / float64(win.Total().Count())
		fmt.Printf("%-12s %-9s %10d %9.0f %9.0f %9.0f %9.0f %7.1f %9.0f %7.2f\n",
			c.workload, c.scheme, res.Cycles, kreqs,
			lat.P50(), lat.Quantile(0.95), lat.P99(),
			res.Metrics.Hist("kv.batch_size").Mean(),
			res.Metrics.Hist("kv.queue_delay").P50(), burn)
		if *timeline {
			printTimeline(c, win)
		}
		if *verbose {
			fmt.Fprint(os.Stdout, res.Metrics.StringWith(stats.Glossary))
			fmt.Println()
		}
		if *perfettoOut != "" {
			f, err := os.Create(*perfettoOut)
			if err != nil {
				log.Fatal(err)
			}
			err = trace.WriteMetricsPerfetto(f, res.Metrics, trace.PerfettoMeta{
				Process: fmt.Sprintf("bbbkv %s/%s", c.workload, c.scheme),
			})
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				log.Fatal(err)
			}
		}
	}
}

// printTimeline renders latency over time: one row per kv.lat.win window
// with its percentiles, SLO violations, the window burn rate and the
// cumulative burn — the table EXPERIMENTS.md quotes per scheme.
func printTimeline(c combo, win *stats.Windowed) {
	fmt.Printf("\n  %s/%s latency over time (window %d cycles, SLO %d cycles):\n",
		c.workload, c.scheme, win.Width(), win.SLO())
	fmt.Printf("  %12s %7s %9s %9s %9s %7s %9s\n",
		"window start", "reqs", "p50", "p99", "over_slo", "burn%", "cum burn%")
	var cumReqs, cumOver uint64
	for _, snap := range win.Snapshots() {
		cumReqs += snap.Count
		cumOver += snap.Over
		burn, cum := 0.0, 0.0
		if snap.Count > 0 {
			burn = 100 * float64(snap.Over) / float64(snap.Count)
		}
		if cumReqs > 0 {
			cum = 100 * float64(cumOver) / float64(cumReqs)
		}
		fmt.Printf("  %12d %7d %9.0f %9.0f %9d %7.2f %9.2f\n",
			snap.Start, snap.Count, snap.P50, snap.P99, snap.Over, burn, cum)
	}
	fmt.Println()
}

func windowLabel(w int64) string {
	if w == 0 {
		return "default"
	}
	return fmt.Sprintf("%d cycles", w)
}

func sloLabel(s uint64) string {
	if s == 0 {
		return "default"
	}
	return fmt.Sprintf("%d cycles", s)
}
