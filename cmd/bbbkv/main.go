// Command bbbkv drives the multi-client KV service tier
// (internal/kvservice) across persistency schemes and reports the
// service-level numbers the scheme comparison turns on: throughput and the
// request-latency percentiles. Where bbbsim reports what the machine did
// (cycles, drains, NVMM writes), bbbkv reports what a client of the
// service would feel — the paper's argument lands as a tail-latency gap
// between BBB and the explicit-flush PMEM baseline at the same offered
// load.
//
// The -workload and -scheme flags accept comma-separated lists; the cross
// product fans out over -parallel concurrent simulations (internal/sweep),
// and rows print in (workload, scheme) order regardless of parallelism.
//
// Usage:
//
//	bbbkv
//	bbbkv -scheme pmem,bbb -clients 8 -ops 500
//	bbbkv -workload kv/uniform -batch-window 1200
//	bbbkv -scheme bbb -verbose
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"

	"bbb"
	"bbb/internal/stats"
	"bbb/internal/sweep"
)

type combo struct {
	workload string
	scheme   bbb.Scheme
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bbbkv: ")
	var (
		wl       = flag.String("workload", "kv", "service workload (comma-separated list fans out): kv (zipfian keys), kv/uniform")
		scheme   = flag.String("scheme", "pmem,eadr,bbb,bbb-proc,bep,nvcache", "persistency scheme (comma-separated list fans out)")
		clients  = flag.Int("clients", 4, "concurrent service clients (one core each)")
		ops      = flag.Int("ops", 400, "requests per client")
		window   = flag.Int64("batch-window", 0, "request-batching window in cycles (0 = workload default)")
		seed     = flag.Int64("seed", 1, "schedule RNG seed")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent simulations for workload/scheme lists (1 = serial; output is identical either way)")
		verbose  = flag.Bool("verbose", false, "dump every kv.* histogram per run")
	)
	flag.Parse()

	var combos []combo
	for _, w := range strings.Split(*wl, ",") {
		for _, name := range strings.Split(*scheme, ",") {
			s, err := bbb.ParseScheme(strings.TrimSpace(name))
			if err != nil {
				log.Fatal(err)
			}
			combos = append(combos, combo{strings.TrimSpace(w), s})
		}
	}

	o := bbb.Options{
		Clients:      *clients,
		OpsPerThread: *ops,
		Seed:         *seed,
		BatchWindow:  bbb.Cycle(*window),
	}

	type outcome struct {
		res bbb.Result
		err error
	}
	results := sweep.Map(*parallel, len(combos), func(i int) outcome {
		r, err := bbb.Run(combos[i].workload, combos[i].scheme, o)
		return outcome{r, err}
	})

	fmt.Printf("%d clients x %d requests, batch window %s, seed %d\n\n",
		*clients, *ops, windowLabel(*window), *seed)
	fmt.Printf("%-12s %-9s %10s %9s %9s %9s %9s %7s %9s\n",
		"workload", "scheme", "cycles", "kreq/s", "lat p50", "lat p95", "lat p99", "batch", "queue p50")
	for i, out := range results {
		if out.err != nil {
			log.Fatal(out.err)
		}
		c := combos[i]
		res := out.res
		if res.Metrics == nil || res.Metrics.Hist("kv.lat") == nil {
			log.Fatalf("%s is not a service workload (no kv.lat histogram); bbbkv drives kv and kv/uniform", c.workload)
		}
		lat := res.Metrics.Hist("kv.lat")
		reqs := float64(*clients * *ops)
		// Cycles are 2 GHz (Table III), so kreq/s = reqs / (cycles/2e9) / 1e3.
		kreqs := reqs / (float64(res.Cycles) / 2e9) / 1e3
		fmt.Printf("%-12s %-9s %10d %9.0f %9.0f %9.0f %9.0f %7.1f %9.0f\n",
			c.workload, c.scheme, res.Cycles, kreqs,
			lat.P50(), lat.Quantile(0.95), lat.P99(),
			res.Metrics.Hist("kv.batch_size").Mean(),
			res.Metrics.Hist("kv.queue_delay").P50())
		if *verbose {
			fmt.Fprint(os.Stdout, res.Metrics.StringWith(stats.Glossary))
			fmt.Println()
		}
	}
}

func windowLabel(w int64) string {
	if w == 0 {
		return "default"
	}
	return fmt.Sprintf("%d cycles", w)
}
