// Command bbbench regenerates every table and figure of the paper's
// evaluation section (see EXPERIMENTS.md for the paper-vs-measured record).
//
// Usage:
//
//	bbbench                      # everything (slow: full figure sweeps)
//	bbbench -table 7             # one table (1,3,4,5,6,7,8,9,10,11)
//	bbbench -fig 7a              # one figure (7a, 7b, 8)
//	bbbench -ops 400 -threads 8  # workload scale
//	bbbench -scale               # full Table III caches (slower, larger)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"bbb"
)

func main() {
	var (
		table    = flag.String("table", "", "regenerate one table: 1,3,4,5,6,7,8,9,10,11")
		fig      = flag.String("fig", "", "regenerate one figure: 7a, 7b, 8")
		ops      = flag.Int("ops", 300, "operations per thread for simulation-backed results")
		threads  = flag.Int("threads", 8, "threads/cores")
		entries  = flag.Int("entries", 32, "bbPB entries for the cost tables")
		scale    = flag.Bool("scale", false, "use the full Table III cache sizes (default: proportionally scaled caches)")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent simulations per sweep (1 = serial; output is identical either way)")
		jsonPath = flag.String("json", "", "also write the simulation-backed figure data as JSON to this file")
	)
	flag.Parse()

	o := bbb.Options{Threads: *threads, OpsPerThread: *ops, Parallelism: *parallel}
	if !*scale {
		o.L1Size = 8 * 1024
		o.L2Size = 64 * 1024
	}

	out := os.Stdout
	all := *table == "" && *fig == ""
	sep := func() { fmt.Fprintln(out) }

	var export struct {
		Fig7     *bbb.Fig7Result `json:"fig7,omitempty"`
		ProcSide float64         `json:"procSideWriteRatio,omitempty"`
		Fig8     []bbb.Fig8Point `json:"fig8,omitempty"`
		Table4   []bbb.PStoreRow `json:"table4,omitempty"`
		Schemes  []bbb.SchemeRow `json:"schemeComparison,omitempty"`
	}

	run := func(id string) bool { return all || *table == id }
	runFig := func(id string) bool { return all || *fig == id }

	if run("1") {
		bbb.PrintTable1(out)
		sep()
	}
	if run("3") {
		bbb.PrintTable3(out)
		sep()
	}
	if run("4") {
		fmt.Fprintln(out, "(measuring store mix...)")
		rows := bbb.RunTable4(o)
		bbb.PrintTable4(out, rows)
		export.Table4 = rows
		sep()
	}
	if run("5") {
		bbb.PrintTable5(out)
		sep()
	}
	if run("6") {
		bbb.PrintTable6(out)
		sep()
	}
	if run("7") || run("8") {
		bbb.PrintTable7And8(out, *entries)
		sep()
	}
	if run("9") {
		bbb.PrintTable9(out, *entries)
		sep()
	}
	if run("10") {
		bbb.PrintTable10(out)
		sep()
	}
	if run("11") {
		bbb.PrintTable11(out)
		sep()
	}
	if runFig("7a") || runFig("7b") {
		fmt.Fprintln(out, "(running Figure 7 sweep: 7 workloads x {eADR, BBB-32, BBB-1024}...)")
		f := bbb.RunFig7(o)
		bbb.PrintFig7(out, f)
		ratio := bbb.ProcSideWriteRatio(o)
		fmt.Fprintf(out, "processor-side organization: %.2fx eADR's NVMM writes (paper: ~2.8x)\n", ratio)
		export.Fig7, export.ProcSide = &f, ratio
		sep()
	}
	if runFig("8") {
		fmt.Fprintln(out, "(running Figure 8 sweep: 7 workloads x 11 bbPB sizes...)")
		pts := bbb.RunFig8(o, nil)
		bbb.PrintFig8(out, pts)
		export.Fig8 = pts
		sep()
	}
	if all || *table == "schemes" {
		fmt.Fprintln(out, "(running extended all-schemes comparison with wear tracking...)")
		rows, err := bbb.RunSchemeComparison("hashmap", o)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bbbench:", err)
			os.Exit(1)
		}
		bbb.PrintSchemeComparison(out, rows)
		export.Schemes = rows
		sep()
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bbbench:", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(export); err != nil {
			fmt.Fprintln(os.Stderr, "bbbench:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "bbbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(out, "wrote JSON to %s\n", *jsonPath)
	}
}
