// Command bbbregress is the noise-aware gate over the benchmark-regression
// trail: it compares the newest BENCH_<n>.json against the trajectory of
// the older recordings and fails (exit 1) only on regressions the history
// can actually support — the candidate sits outside a median ± K·MADσ band
// on a metric whose history is stable, in the direction that hurts
// (throughput down, ns/op or allocations up). Noisy metrics are reported
// as suspects, never failed, so a machine having a bad day cannot turn the
// gate red.
//
// The comparison logic lives in internal/obs (Compare/Render); this
// command only loads and flattens the JSON files — map iteration and file
// discovery stay in cmd where detlint permits them.
//
// Usage:
//
//	bbbregress                        # newest BENCH file vs the rest
//	bbbregress -candidate BENCH_3.json
//	bbbregress -all                   # print every verdict, not just moves
//	bbbregress -json > report.json
//	bbbregress -ledger .ledger        # also append the report to a run ledger
//	bbbregress -gate=false            # report only, never exit non-zero
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"bbb/internal/obs"
)

// benchFile mirrors cmd/benchjson's output document.
type benchFile struct {
	GOOS    string `json:"goos"`
	GOARCH  string `json:"goarch"`
	CPU     string `json:"cpu"`
	Results []struct {
		Name       string             `json:"name"`
		Iterations int64              `json:"iterations"`
		Metrics    map[string]float64 `json:"metrics"`
	} `json:"results"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bbbregress: ")
	var (
		dir        = flag.String("dir", ".", "directory holding the BENCH_<n>.json trail")
		candidate  = flag.String("candidate", "", "candidate file to judge (default: the highest-numbered BENCH_<n>.json)")
		gate       = flag.Bool("gate", true, "exit 1 when a stable metric regressed")
		all        = flag.Bool("all", false, "print every verdict, not just the ones that moved")
		jsonOut    = flag.Bool("json", false, "emit the full report as JSON instead of the table")
		minHistory = flag.Int("min-history", 0, "history points required before judging a metric (default 2)")
		k          = flag.Float64("k", 0, "noise-band width in MAD sigmas (default 4)")
		floor      = flag.Float64("floor", 0, "minimum relative threshold as a fraction of the median (default 0.02)")
		stableCoV  = flag.Float64("stable-cov", 0, "maximum relative history deviation for a metric to gate (default 0.10)")
		ledgerDir  = flag.String("ledger", "", "run-ledger directory to append the comparison to (see internal/obs)")
	)
	flag.Parse()

	trail, err := benchTrail(*dir)
	if err != nil {
		log.Fatal(err)
	}
	candPath := *candidate
	if candPath == "" {
		if len(trail) == 0 {
			log.Fatalf("no BENCH_*.json files in %s", *dir)
		}
		candPath = trail[len(trail)-1]
		trail = trail[:len(trail)-1]
	} else {
		abs := func(p string) string {
			a, err := filepath.Abs(p)
			if err != nil {
				return p
			}
			return a
		}
		kept := trail[:0]
		for _, p := range trail {
			if abs(p) != abs(candPath) {
				kept = append(kept, p)
			}
		}
		trail = kept
	}

	cand, err := loadBenchRun(candPath)
	if err != nil {
		log.Fatal(err)
	}
	history := make([]obs.BenchRun, 0, len(trail))
	for _, p := range trail {
		run, err := loadBenchRun(p)
		if err != nil {
			log.Fatal(err)
		}
		history = append(history, run)
	}

	report, err := obs.Compare(history, cand, obs.RegressOptions{
		K: *k, Floor: *floor, StableCoV: *stableCoV, MinHistory: *minHistory,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Print(report.Render(*all))
	}

	if *ledgerDir != "" {
		if err := appendToLedger(*ledgerDir, report); err != nil {
			log.Fatal(err)
		}
	}

	if *gate && report.Failed() {
		os.Exit(1)
	}
}

// benchTrail lists dir's BENCH_<n>.json files in trajectory order
// (numerically by n, the order `make bench-json` writes them).
func benchTrail(dir string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	type numbered struct {
		path string
		n    int
	}
	var files []numbered
	for _, p := range matches {
		base := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(p), "BENCH_"), ".json")
		n, err := strconv.Atoi(base)
		if err != nil {
			continue // not part of the numbered trail
		}
		files = append(files, numbered{p, n})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].n < files[j].n })
	out := make([]string, len(files))
	for i, f := range files {
		out[i] = f.path
	}
	return out, nil
}

// loadBenchRun reads one benchjson document and flattens its metric maps
// into the sorted-slice form internal/obs consumes.
func loadBenchRun(path string) (obs.BenchRun, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return obs.BenchRun{}, err
	}
	var doc benchFile
	if err := json.Unmarshal(blob, &doc); err != nil {
		return obs.BenchRun{}, fmt.Errorf("%s: %w", path, err)
	}
	run := obs.BenchRun{Label: filepath.Base(path)}
	for _, r := range doc.Results {
		pt := obs.BenchPoint{Name: r.Name}
		names := make([]string, 0, len(r.Metrics))
		for name := range r.Metrics {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			pt.Metrics = append(pt.Metrics, obs.BenchMetric{Name: name, Value: r.Metrics[name]})
		}
		run.Benches = append(run.Benches, pt)
	}
	sort.Slice(run.Benches, func(i, j int) bool { return run.Benches[i].Name < run.Benches[j].Name })
	return run, nil
}

// appendToLedger records the comparison as a regress line in the run
// ledger, under a run identity derived from the file labels compared. The
// verdict table is the det payload; where it ran is the host stamp.
func appendToLedger(dir string, report *obs.RegressReport) error {
	ledger, err := obs.Open(dir)
	if err != nil {
		return err
	}
	runID, err := obs.RunID("bbbregress", struct {
		Candidate string   `json:"candidate"`
		History   []string `json:"history"`
	}{report.Candidate, report.History})
	if err != nil {
		return err
	}
	seqBase := 0
	if prior, err := ledger.ReadIfExists(runID); err != nil {
		return err
	} else if prior != nil {
		if err := ledger.Repair(prior); err != nil {
			return err
		}
		seqBase = len(prior.Lines)
	}
	w, err := ledger.Append(runID, seqBase)
	if err != nil {
		return err
	}
	host, _ := os.Hostname()
	if err := w.Write(obs.KindRegress, report, &obs.HostInfo{
		Hostname: host,
		GOOS:     runtime.GOOS,
		GOARCH:   runtime.GOARCH,
		CPUs:     runtime.NumCPU(),
		UnixNS:   time.Now().UnixNano(),
	}); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}
