package main

import (
	"os"
	"path/filepath"
	"testing"

	"bbb/internal/obs"
)

func writeBench(t *testing.T, dir, name, doc string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func doc(ns, stores string) string {
	return "{\"goos\":\"linux\",\"results\":[" +
		"{\"name\":\"BenchmarkB\",\"iterations\":10,\"metrics\":{\"ns/op\":" + ns + ",\"sim_stores/s\":" + stores + "}}," +
		"{\"name\":\"BenchmarkA\",\"iterations\":10,\"metrics\":{\"allocs/op\":210}}]}"
}

// TestBenchTrailOrder pins numeric trail ordering: BENCH_10 sorts after
// BENCH_9, and files outside the numbered pattern are ignored.
func TestBenchTrailOrder(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_10.json", "BENCH_2.json", "BENCH_9.json", "BENCH_x.json", "OTHER_1.json"} {
		writeBench(t, dir, name, doc("100", "1000"))
	}
	trail, err := benchTrail(dir)
	if err != nil {
		t.Fatal(err)
	}
	var bases []string
	for _, p := range trail {
		bases = append(bases, filepath.Base(p))
	}
	want := []string{"BENCH_2.json", "BENCH_9.json", "BENCH_10.json"}
	if len(bases) != len(want) {
		t.Fatalf("trail = %v, want %v", bases, want)
	}
	for i := range want {
		if bases[i] != want[i] {
			t.Fatalf("trail = %v, want %v", bases, want)
		}
	}
}

// TestLoadBenchRunFlattens pins the map-to-ordered-slice flattening: the
// benchmark list and each metric list come back sorted by name.
func TestLoadBenchRunFlattens(t *testing.T) {
	dir := t.TempDir()
	path := writeBench(t, dir, "BENCH_0.json", doc("100", "1000"))
	run, err := loadBenchRun(path)
	if err != nil {
		t.Fatal(err)
	}
	if run.Label != "BENCH_0.json" {
		t.Fatalf("label = %q", run.Label)
	}
	if len(run.Benches) != 2 || run.Benches[0].Name != "BenchmarkA" || run.Benches[1].Name != "BenchmarkB" {
		t.Fatalf("benches not sorted: %+v", run.Benches)
	}
	b := run.Benches[1]
	if len(b.Metrics) != 2 || b.Metrics[0].Name != "ns/op" || b.Metrics[1].Name != "sim_stores/s" {
		t.Fatalf("metrics not sorted: %+v", b.Metrics)
	}
}

// TestEndToEndGateOnFixtures drives the whole load-and-compare path on a
// synthetic trail: a 10% throughput drop against a tight history gates,
// the unchanged run does not.
func TestEndToEndGateOnFixtures(t *testing.T) {
	dir := t.TempDir()
	writeBench(t, dir, "BENCH_0.json", doc("100", "100000"))
	writeBench(t, dir, "BENCH_1.json", doc("101", "99500"))
	writeBench(t, dir, "BENCH_2.json", doc("99", "100300"))
	bad := writeBench(t, dir, "BENCH_3.json", doc("100", "90000"))

	trail, err := benchTrail(dir)
	if err != nil {
		t.Fatal(err)
	}
	var history []obs.BenchRun
	for _, p := range trail[:3] {
		run, err := loadBenchRun(p)
		if err != nil {
			t.Fatal(err)
		}
		history = append(history, run)
	}
	cand, err := loadBenchRun(bad)
	if err != nil {
		t.Fatal(err)
	}
	report, err := obs.Compare(history, cand, obs.RegressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Failed() {
		t.Fatalf("10%% sim_stores/s drop did not gate:\n%s", report.Render(true))
	}

	okCand, err := loadBenchRun(filepath.Join(dir, "BENCH_2.json"))
	if err != nil {
		t.Fatal(err)
	}
	report, err = obs.Compare(history[:2], okCand, obs.RegressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if report.Failed() {
		t.Fatalf("noise-level candidate gated:\n%s", report.Render(true))
	}
}
