// Command bbbreport runs the full evaluation at a chosen scale and emits a
// self-contained markdown report with paper-vs-measured numbers — a fresh,
// machine-generated EXPERIMENTS.md companion.
//
//	bbbreport -ops 300 > report.md
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"bbb"
)

func main() {
	var (
		ops     = flag.Int("ops", 300, "operations per thread")
		threads = flag.Int("threads", 8, "threads/cores")
		scale   = flag.Bool("scale", false, "full Table III caches")
		out     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bbbreport:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	o := bbb.Options{Threads: *threads, OpsPerThread: *ops}
	if !*scale {
		o.L1Size = 8 * 1024
		o.L2Size = 64 * 1024
	}

	started := time.Now()
	fmt.Fprintf(w, "# BBB reproduction report\n\n")
	fmt.Fprintf(w, "Harness scale: %d threads x %d ops; scaled caches: %v.\n\n", *threads, *ops, !*scale)

	// --- Table IV ---
	fmt.Fprintf(w, "## Table IV — store mix\n\n")
	fmt.Fprintf(w, "| Workload | measured %%P | paper %%P |\n|---|---|---|\n")
	for _, r := range bbb.RunTable4(o) {
		fmt.Fprintf(w, "| %s | %.1f %% | %.1f %% |\n", r.Workload, r.MeasuredPct, r.PaperPct)
	}

	// --- Figure 7 ---
	fmt.Fprintf(w, "\n## Figure 7 — execution time and NVMM writes vs eADR\n\n")
	f7 := bbb.RunFig7(o)
	fmt.Fprintf(w, "| Workload | exec BBB-32 | exec BBB-1024 | writes BBB-32 | writes BBB-1024 |\n|---|---|---|---|---|\n")
	for _, r := range f7.Rows {
		fmt.Fprintf(w, "| %s | %.3f | %.3f | %.3f | %.3f |\n",
			r.Workload, r.ExecBBB32, r.ExecBBB1024, r.WritesBBB32, r.WritesBBB1024)
	}
	fmt.Fprintf(w, "\nBBB-32 exec overhead: mean %.1f %%, worst %.1f %% (paper ~1 %% / 2.8 %%).\n",
		100*f7.MeanExecOverheadBBB32, 100*f7.WorstExecOverheadBBB32)
	fmt.Fprintf(w, "BBB-32 write overhead: %.1f %% (paper 4.9 %%); BBB-1024: %.1f %% (paper <1 %%).\n",
		100*f7.MeanWriteOverheadBBB32, 100*f7.MeanWriteOverheadBBB1024)
	fmt.Fprintf(w, "Processor-side organization: %.2fx eADR writes (paper ~2.8x).\n",
		bbb.ProcSideWriteRatio(o))

	// --- Figure 8 ---
	fmt.Fprintf(w, "\n## Figure 8 — bbPB size sensitivity (normalized to 1 entry)\n\n")
	fmt.Fprintf(w, "| Entries | rejections | exec time | drains |\n|---|---|---|---|\n")
	for _, p := range bbb.RunFig8(o, nil) {
		fmt.Fprintf(w, "| %d | %.4f | %.4f | %.4f |\n", p.Entries, p.Rejections, p.ExecTime, p.Drains)
	}

	// --- Energy tables ---
	fmt.Fprintf(w, "\n## Tables VII-IX — draining cost model (scale-independent)\n\n")
	fmt.Fprintf(w, "```\n")
	bbb.PrintTable7And8(w, 32)
	fmt.Fprintf(w, "\n")
	bbb.PrintTable9(w, 32)
	fmt.Fprintf(w, "```\n")

	// --- Scheme comparison ---
	fmt.Fprintf(w, "\n## Extended scheme comparison (hashmap, wear-tracked)\n\n")
	rows, err := bbb.RunSchemeComparison("hashmap", o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bbbreport:", err)
		os.Exit(1)
	}
	fmt.Fprintf(w, "| Scheme | cycles | NVMM writes | wear max | wear mean |\n|---|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(w, "| %s | %d | %d | %d | %.2f |\n",
			bbb.SchemeTraits(r.Scheme).Name, r.Cycles, r.NVMMWrites, r.WearMax, r.WearMean)
	}

	// --- Crash matrix ---
	fmt.Fprintf(w, "\n## Figures 2/3 — crash-injection matrix (linked list)\n\n")
	fmt.Fprintf(w, "| Scheme | barriers | crash points | inconsistent |\n|---|---|---|---|\n")
	type cell struct {
		s        bbb.Scheme
		barriers bool
	}
	for _, c := range []cell{
		{bbb.SchemePMEM, true}, {bbb.SchemePMEM, false},
		{bbb.SchemeEADR, false}, {bbb.SchemeBBB, false},
		{bbb.SchemeBEP, true}, {bbb.SchemeBEP, false},
	} {
		oc := o
		oc.Threads = 4
		oc.NoBarriers = !c.barriers
		oc.L1Size, oc.L2Size = 1024, 4096
		rep, err := bbb.CrashCampaign("linkedlist", c.s, oc, 12, 5_000, 8_000)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bbbreport:", err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "| %s | %v | %d | %d |\n",
			bbb.SchemeTraits(c.s).Name, c.barriers, len(rep.Outcomes), rep.Inconsistent)
	}

	fmt.Fprintf(w, "\n_Generated in %s._\n", time.Since(started).Round(time.Second))
}
