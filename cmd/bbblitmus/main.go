// Command bbblitmus drives the Px86-TSO litmus conformance harness: the
// generated litmus corpus (internal/litmus), the axiomatic allowed-set
// checker (internal/axiomatic), and the operational-vs-declarative
// conformance gate (internal/litmus/conform).
//
// Usage:
//
//	bbblitmus generate              # list the corpus
//	bbblitmus generate -go          # regenerate internal/litmus/corpus_gen.go
//	bbblitmus check -test mp        # allowed outcomes per model
//	bbblitmus conform -points 6     # the gate: operational ⊆ allowed (CI)
//	bbblitmus explain -witness w.json  # triage a divergence witness
//
// conform exits non-zero on any divergence and (with -witness-out) leaves
// a minimized replayable witness; explain replays one and says whether it
// is a simulator bug, a broken scheme strengthening, or stale.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"

	"bbb/internal/axiomatic"
	"bbb/internal/crashmc"
	"bbb/internal/litmus"
	"bbb/internal/litmus/conform"
	"bbb/internal/persistency"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bbblitmus: ")
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "generate":
		os.Exit(generate(os.Args[2:]))
	case "check":
		os.Exit(check(os.Args[2:]))
	case "conform":
		os.Exit(conformCmd(os.Args[2:]))
	case "explain":
		os.Exit(explain(os.Args[2:]))
	case "-h", "-help", "--help", "help":
		usage()
	default:
		log.Printf("unknown subcommand %q", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: bbblitmus <subcommand> [flags]

  generate   list the litmus corpus; -go regenerates corpus_gen.go
  check      print the axiomatic allowed outcomes of a test per model
  conform    gate operational (crashmc) ⊆ allowed (axiomatic) per test×scheme
  explain    replay a conformance divergence witness and triage it`)
}

func generate(args []string) int {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	emitGo := fs.Bool("go", false, "write the executable corpus to -o instead of listing")
	out := fs.String("o", "internal/litmus/corpus_gen.go", "output path for -go")
	fs.Parse(args)

	if *emitGo {
		src, err := litmus.EmitGo()
		if err != nil {
			log.Print(err)
			return 1
		}
		if err := os.WriteFile(*out, src, 0o644); err != nil {
			log.Print(err)
			return 1
		}
		fmt.Printf("wrote %s (%d tests)\n", *out, len(litmus.Corpus()))
		return 0
	}
	fmt.Printf("%-12s %7s %6s  %s\n", "test", "threads", "stores", "doc")
	for _, t := range litmus.Corpus() {
		fmt.Printf("%-12s %7d %6d  %s\n", t.Name, len(t.Threads), len(t.Stores()), t.Doc)
	}
	return 0
}

func check(args []string) int {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	name := fs.String("test", "", "litmus test to check (default: all)")
	model := fs.String("model", "", "model to enumerate: relaxed, epoch or strict (default: all)")
	fs.Parse(args)

	tests := litmus.Corpus()
	if *name != "" {
		t, err := litmus.ByName(*name)
		if err != nil {
			log.Print(err)
			return 1
		}
		tests = []*litmus.Test{t}
	}
	models := axiomatic.Models()
	if *model != "" {
		models = nil
		for _, m := range axiomatic.Models() {
			if m.String() == *model {
				models = []axiomatic.Model{m}
			}
		}
		if models == nil {
			log.Printf("unknown model %q (want relaxed, epoch or strict)", *model)
			return 1
		}
	}
	for _, t := range tests {
		fmt.Printf("%s: vars %s\n", t.Name, strings.Join(t.Vars, " "))
		for _, m := range models {
			r := axiomatic.Enumerate(t, m)
			outs := make([]string, len(r.Outcomes))
			for i, o := range r.Outcomes {
				outs[i] = "{" + axiomatic.FormatOutcome(t, o) + "}"
			}
			fmt.Printf("  %-7s %2d allowed (%d executions): %s\n", m, len(r.Outcomes), r.Executions, strings.Join(outs, " "))
		}
	}
	return 0
}

func conformCmd(args []string) int {
	fs := flag.NewFlagSet("conform", flag.ExitOnError)
	points := fs.Int("points", 8, "crash points per test×scheme pair")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "concurrent pairs (1 = serial; reports are identical either way)")
	testName := fs.String("test", "", "single litmus test (default: full corpus)")
	schemes := fs.String("schemes", "", "comma-separated schemes (default: all)")
	witnessOut := fs.String("witness-out", "", "write the first divergence witness to this file")
	fs.Parse(args)

	opts := conform.Options{Points: *points, Parallel: *parallel}
	if *testName != "" {
		t, err := litmus.ByName(*testName)
		if err != nil {
			log.Print(err)
			return 1
		}
		opts.Tests = []*litmus.Test{t}
	}
	if *schemes != "" {
		for _, name := range strings.Split(*schemes, ",") {
			s, err := persistency.ParseScheme(strings.TrimSpace(name))
			if err != nil {
				log.Print(err)
				return 1
			}
			opts.Schemes = append(opts.Schemes, s)
		}
	}

	rep := conform.Run(opts)
	fmt.Print(rep.String())
	fmt.Println(rep.Summary())
	if rep.Ok() {
		return 0
	}
	if w := rep.FirstWitness(); w != nil {
		data, err := w.MarshalIndent()
		if err != nil {
			log.Print(err)
		} else if *witnessOut != "" {
			if werr := os.WriteFile(*witnessOut, data, 0o644); werr != nil {
				log.Print(werr)
			} else {
				log.Printf("divergence witness written to %s", *witnessOut)
			}
		} else {
			log.Printf("first divergence witness:\n%s", data)
		}
	}
	return 1
}

func explain(args []string) int {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	path := fs.String("witness", "", "witness file written by `bbblitmus conform -witness-out` (required)")
	fs.Parse(args)
	if *path == "" {
		log.Print("explain: -witness is required")
		return 2
	}
	data, err := os.ReadFile(*path)
	if err != nil {
		log.Print(err)
		return 1
	}
	w, err := crashmc.ParseWitness(data)
	if err != nil {
		log.Print(err)
		return 1
	}
	ex, err := conform.Explain(w)
	if err != nil {
		log.Print(err)
		return 1
	}
	fmt.Printf("test:    %s\nscheme:  %s (%s model)\noutcome: {%s}\n", ex.Test, ex.Scheme, ex.Model, ex.Formatted)
	if ex.Reproduced {
		fmt.Println("status:  REPRODUCED — outcome is outside the allowed set")
	} else {
		fmt.Println("status:  not reproduced — outcome is inside the allowed set")
	}
	fmt.Printf("triage:  %s\n", ex.Note)
	if ex.Reproduced {
		return 0 // like bbbmc -repro: exit 0 when the witness reproduces
	}
	return 1
}
