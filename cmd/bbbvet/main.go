// Command bbbvet is the repository's custom static-analysis driver. It
// enforces the persistency-contract and determinism rules the simulator
// relies on but the Go compiler cannot check:
//
//	locklint     lineLock-guarded state touched outside annotated scopes
//	detlint      nondeterminism in simulator packages (wall clock, global
//	             rand, host-environment probes, map-order-dependent loops)
//	statlint     counter names that are read but never incremented (typos)
//	             or incremented but never consumed
//	cyclelint    engine.Cycle values mixed with raw integer variables
//	persistlint  flow-sensitive persist-ordering analysis of simulated
//	             programs: commit stores before their dependees are
//	             durable, redundant flushes/fences/barriers, and programs
//	             that never persist their stores
//
// Usage:
//
//	go run ./cmd/bbbvet [-only analyzer] [-json] ./...
//
// Exit status is non-zero when any non-suppressed diagnostic is reported.
// Individual findings are suppressed with `//bbbvet:ignore <analyzer>
// <reason>` (line or /*...*/ block form) on or directly above the
// offending line. With -json, every finding — including suppressed ones,
// marked "ignored":true — is printed as one JSON object per line with
// keys file, line, analyzer, message, ignored.
package main

import (
	"flag"
	"fmt"
	"os"

	"bbb/internal/vet"
	"bbb/internal/vet/cyclelint"
	"bbb/internal/vet/detlint"
	"bbb/internal/vet/locklint"
	"bbb/internal/vet/persistlint"
	"bbb/internal/vet/statlint"
)

func main() {
	var only string
	var asJSON bool
	flag.StringVar(&only, "only", "", "run a single analyzer (locklint, detlint, statlint, cyclelint, persistlint)")
	flag.BoolVar(&asJSON, "json", false, "emit one JSON object per finding (including ignored ones)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: bbbvet [-only analyzer] [-json] [packages]\n\n")
		for _, a := range analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "%s\n%s\n\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	selected := analyzers()
	if only != "" {
		var found []*vet.Analyzer
		for _, a := range selected {
			if a.Name == only {
				found = append(found, a)
			}
		}
		if len(found) == 0 {
			fmt.Fprintf(os.Stderr, "bbbvet: unknown analyzer %q\n", only)
			os.Exit(2)
		}
		selected = found
	}

	pkgs, fset, err := vet.Load("", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bbbvet: %v\n", err)
		os.Exit(2)
	}
	diags, err := vet.RunAll(pkgs, fset, selected)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bbbvet: %v\n", err)
		os.Exit(2)
	}

	failing := 0
	for _, d := range diags {
		if !d.Ignored {
			failing++
		}
	}
	if asJSON {
		if err := vet.WriteJSON(os.Stdout, diags); err != nil {
			fmt.Fprintf(os.Stderr, "bbbvet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			if !d.Ignored {
				fmt.Println(d)
			}
		}
	}
	if failing > 0 {
		os.Exit(1)
	}
}

func analyzers() []*vet.Analyzer {
	return []*vet.Analyzer{
		locklint.Analyzer,
		detlint.Analyzer,
		statlint.Analyzer,
		cyclelint.Analyzer,
		persistlint.Analyzer,
	}
}
