// Command bbbvet is the repository's custom static-analysis driver. It
// enforces the persistency-contract and determinism rules the simulator
// relies on but the Go compiler cannot check:
//
//	locklint      lineLock-guarded state touched outside annotated scopes
//	detlint       nondeterminism in simulator packages (wall clock, global
//	              rand, host-environment probes, map-order-dependent loops)
//	statlint      counter names that are read but never incremented (typos)
//	              or incremented but never consumed
//	cyclelint     engine.Cycle values mixed with raw integer variables
//	persistlint   flow-sensitive persist-ordering analysis of simulated
//	              programs: commit stores before their dependees are
//	              durable, redundant flushes/fences/barriers, and programs
//	              that never persist their stores
//	pressurelint  interprocedural persist-pressure bounds: the maximum
//	              number of simultaneously dirty persistence-domain lines
//	              a program can have in flight, reported as static
//	              battery-bound certificates (-pressure-report)
//
// Usage:
//
//	go run ./cmd/bbbvet [-only analyzer] [-json] [-sarif file] [-pressure-report file] ./...
//
// Exit status: 0 when no non-suppressed diagnostic is reported, 1 when
// findings remain, 2 on internal errors (package load failure, unknown
// analyzer, unwritable output). Individual findings are suppressed with
// `//bbbvet:ignore <analyzer> <reason>` (line or /*...*/ block form) on or
// directly above the offending line. With -json, every finding — including
// suppressed ones, marked "ignored":true — is printed as one JSON object
// per line with keys file, line, analyzer, message, ignored (plus "also"
// when several analyzers reported the identical finding; duplicates are
// folded into one line). With -sarif, the same findings are written as a
// SARIF 2.1.0 log ("-" for stdout) for code-scanning upload. With
// -pressure-report, pressurelint's battery-bound certificates for the
// loaded packages are written as JSON ("-" for stdout), each with its
// per-scheme projections and the battery sizing the certified bound
// implies on the Table V platforms.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"

	"bbb/internal/energy"
	"bbb/internal/vet"
	"bbb/internal/vet/cyclelint"
	"bbb/internal/vet/detlint"
	"bbb/internal/vet/locklint"
	"bbb/internal/vet/persistlint"
	"bbb/internal/vet/pressurelint"
	"bbb/internal/vet/statlint"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

// run is main with its dependencies injected, so the exit-code contract
// is unit-testable: 0 clean, 1 findings, 2 internal error.
func run(stdout, stderr io.Writer, argv []string) int {
	fs := flag.NewFlagSet("bbbvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		only     = fs.String("only", "", "run a single analyzer (locklint, detlint, statlint, cyclelint, persistlint, pressurelint)")
		asJSON   = fs.Bool("json", false, "emit one JSON object per finding (including ignored ones)")
		sarif    = fs.String("sarif", "", "write findings as SARIF 2.1.0 to this file (\"-\" for stdout)")
		pressure = fs.String("pressure-report", "", "write pressurelint battery-bound certificates as JSON to this file (\"-\" for stdout)")
		dir      = fs.String("dir", "", "directory to load packages from (default current)")
		threads  = fs.Int("threads", 2, "thread count used for the -pressure-report scheme projections")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: bbbvet [-only analyzer] [-json] [-sarif file] [-pressure-report file] [packages]\n\n")
		for _, a := range analyzers() {
			fmt.Fprintf(stderr, "%s\n%s\n\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	selected := analyzers()
	if *only != "" {
		var found []*vet.Analyzer
		for _, a := range selected {
			if a.Name == *only {
				found = append(found, a)
			}
		}
		if len(found) == 0 {
			fmt.Fprintf(stderr, "bbbvet: unknown analyzer %q\n", *only)
			return 2
		}
		selected = found
	}

	pkgs, fset, err := vet.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "bbbvet: %v\n", err)
		return 2
	}
	diags, err := vet.RunAll(pkgs, fset, selected)
	if err != nil {
		fmt.Fprintf(stderr, "bbbvet: %v\n", err)
		return 2
	}

	if *sarif != "" {
		if err := writeTo(stdout, *sarif, func(w io.Writer) error {
			return vet.WriteSARIF(w, diags, selected, cwd())
		}); err != nil {
			fmt.Fprintf(stderr, "bbbvet: sarif: %v\n", err)
			return 2
		}
	}
	if *pressure != "" {
		if err := writeTo(stdout, *pressure, func(w io.Writer) error {
			return writePressureReport(w, pkgs, fset, *threads)
		}); err != nil {
			fmt.Fprintf(stderr, "bbbvet: pressure-report: %v\n", err)
			return 2
		}
	}

	failing := 0
	for _, d := range diags {
		if !d.Ignored {
			failing++
		}
	}
	if *asJSON {
		if err := vet.WriteJSON(stdout, diags); err != nil {
			fmt.Fprintf(stderr, "bbbvet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			if !d.Ignored {
				fmt.Fprintln(stdout, d)
			}
		}
	}
	if failing > 0 {
		return 1
	}
	return 0
}

func analyzers() []*vet.Analyzer {
	return []*vet.Analyzer{
		locklint.Analyzer,
		detlint.Analyzer,
		statlint.Analyzer,
		cyclelint.Analyzer,
		persistlint.Analyzer,
		pressurelint.Analyzer,
	}
}

// writeTo runs emit against stdout when path is "-", else against a
// freshly created file.
func writeTo(stdout io.Writer, path string, emit func(io.Writer) error) error {
	if path == "-" {
		return emit(stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func cwd() string {
	wd, err := os.Getwd()
	if err != nil {
		return ""
	}
	return wd
}

// pressureReport is the -pressure-report JSON document: every certificate
// computed over the loaded packages, its projection onto each persistency
// scheme at the default capacities, and — for the battery-backed schemes —
// the battery sizing the certified per-core bound implies.
type pressureReport struct {
	Threads      int                        `json:"threads"`
	Certificates []pressurelint.Certificate `json:"certificates"`
	Bounds       []pressureBoundRow         `json:"bounds"`
}

type pressureBoundRow struct {
	Unit    string                       `json:"unit"`
	Scheme  string                       `json:"scheme"`
	Bound   pressurelint.SchemeBound     `json:"bound"`
	Battery []energy.CertifiedBatteryRow `json:"battery,omitempty"`
}

func writePressureReport(w io.Writer, pkgs []*vet.Package, fset *token.FileSet, threads int) error {
	caps := pressurelint.DefaultCaps()
	model := energy.DefaultCostModel()
	rep := pressureReport{Threads: threads, Certificates: pressurelint.Certificates(pkgs, fset)}
	for _, c := range rep.Certificates {
		for _, scheme := range []string{"pmem", "eadr", "bbb", "bbb-proc", "bep", "nvcache"} {
			row := pressureBoundRow{Unit: c.Unit, Scheme: scheme, Bound: c.ForScheme(scheme, threads, caps, model.LineBytes)}
			switch scheme {
			case "bbb", "bbb-proc", "bep":
				row.Battery = energy.CertifiedBatterySizes(model, row.Bound.PerCoreLines, caps.BBPBEntries)
			}
			rep.Bounds = append(rep.Bounds, row)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
