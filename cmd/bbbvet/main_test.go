package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// scratchModule writes a throwaway single-package module and returns its
// directory. The malformed-ignore diagnostic (an //bbbvet:ignore with no
// reason) is the finding trigger: it is analyzer-independent, so the test
// does not depend on any one lint's heuristics.
func scratchModule(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module scratch\n\ngo 1.23\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "scratch.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestExitCleanIsZero(t *testing.T) {
	dir := scratchModule(t, "package scratch\n\nfunc F() int { return 1 }\n")
	var out, errb bytes.Buffer
	if code := run(&out, &errb, []string{"-dir", dir, "./..."}); code != 0 {
		t.Fatalf("clean module: exit %d, stderr:\n%s\nstdout:\n%s", code, errb.String(), out.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean module printed: %q", out.String())
	}
}

func TestExitFindingsIsOne(t *testing.T) {
	dir := scratchModule(t, "package scratch\n\n//bbbvet:ignore\nfunc F() int { return 1 }\n")
	var out, errb bytes.Buffer
	if code := run(&out, &errb, []string{"-dir", dir, "./..."}); code != 1 {
		t.Fatalf("module with finding: exit %d, want 1; stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(out.String(), "malformed ignore directive") {
		t.Errorf("finding not printed: %q", out.String())
	}
}

func TestExitLoadFailureIsTwo(t *testing.T) {
	var out, errb bytes.Buffer
	// A directory with no go.mod: go list fails, which is an internal
	// error, not a finding.
	if code := run(&out, &errb, []string{"-dir", t.TempDir(), "./..."}); code != 2 {
		t.Fatalf("load failure: exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "bbbvet:") {
		t.Errorf("no error message on stderr: %q", errb.String())
	}
}

func TestExitUnknownAnalyzerIsTwo(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(&out, &errb, []string{"-only", "nosuchlint", "./..."}); code != 2 {
		t.Fatalf("unknown analyzer: exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown analyzer") {
		t.Errorf("stderr: %q", errb.String())
	}
}

func TestSARIFFlagWritesLog(t *testing.T) {
	dir := scratchModule(t, "package scratch\n\n//bbbvet:ignore\nfunc F() int { return 1 }\n")
	sarifPath := filepath.Join(t.TempDir(), "out.sarif")
	var out, errb bytes.Buffer
	if code := run(&out, &errb, []string{"-dir", dir, "-sarif", sarifPath, "./..."}); code != 1 {
		t.Fatalf("exit %d, want 1 (findings still gate with -sarif); stderr:\n%s", code, errb.String())
	}
	raw, err := os.ReadFile(sarifPath)
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Results []json.RawMessage `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(raw, &log); err != nil {
		t.Fatalf("SARIF output does not parse: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 || len(log.Runs[0].Results) == 0 {
		t.Errorf("unexpected SARIF shape: version=%q runs=%d", log.Version, len(log.Runs))
	}
}

func TestPressureReportFlag(t *testing.T) {
	// The report runs against the real module (the repo root relative to
	// this test's working directory), restricted to the workload package.
	var out, errb bytes.Buffer
	code := run(&out, &errb, []string{"-dir", "../..", "-pressure-report", "-", "./internal/workload"})
	if code != 0 {
		t.Fatalf("exit %d, want 0; stderr:\n%s", code, errb.String())
	}
	var rep struct {
		Threads      int `json:"threads"`
		Certificates []struct {
			Unit string `json:"unit"`
		} `json:"certificates"`
		Bounds []struct {
			Unit   string `json:"unit"`
			Scheme string `json:"scheme"`
			Bound  struct {
				MaxDirtyLines int `json:"maxDirtyLines"`
			} `json:"bound"`
			Battery []json.RawMessage `json:"battery"`
		} `json:"bounds"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("pressure report does not parse: %v\n%s", err, out.String())
	}
	if len(rep.Certificates) == 0 {
		t.Fatal("no certificates in report")
	}
	units := map[string]bool{}
	for _, c := range rep.Certificates {
		units[c.Unit] = true
	}
	for _, want := range []string{"Array", "Hashmap", "RTree", "CTree"} {
		if !units[want] {
			t.Errorf("report missing Table IV unit %s", want)
		}
	}
	if want := len(rep.Certificates) * 6; len(rep.Bounds) != want {
		t.Errorf("got %d bound rows, want %d (units × schemes)", len(rep.Bounds), want)
	}
	for _, b := range rep.Bounds {
		if b.Bound.MaxDirtyLines <= 0 {
			t.Errorf("%s × %s: non-positive MaxDirtyLines", b.Unit, b.Scheme)
		}
		batteryScheme := b.Scheme == "bbb" || b.Scheme == "bbb-proc" || b.Scheme == "bep"
		if batteryScheme && len(b.Battery) == 0 {
			t.Errorf("%s × %s: battery scheme without sizing rows", b.Unit, b.Scheme)
		}
		if !batteryScheme && len(b.Battery) != 0 {
			t.Errorf("%s × %s: unexpected battery rows", b.Unit, b.Scheme)
		}
	}
}
