// Command bbbcrash runs crash-injection campaigns, mechanizing the paper's
// programmability argument (§II-A, Figures 2 and 3): it crashes a workload
// at a sweep of cycles, performs the scheme's flush-on-fail, and runs the
// workload's recovery checker against the durable NVMM image.
//
// Inconsistency is only acceptable where the scheme never promised
// recovery (PMEM or BEP with the barriers omitted — the Figure 2 bug).
// A consistency-guaranteeing combination that reports an inconsistent
// image is a simulator bug, and bbbcrash exits non-zero.
//
// Usage:
//
//	bbbcrash                              # the full Figures 2/3 matrix
//	bbbcrash -workload hashmap -points 40 # one workload, denser sweep
//	bbbcrash -quiet                       # one summary line per campaign
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"bbb"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bbbcrash: ")
	var (
		wl       = flag.String("workload", "", "workload to crash (default: linkedlist matrix over all schemes)")
		scheme   = flag.String("scheme", "", "scheme to test (default: all)")
		points   = flag.Int("points", 20, "number of crash points")
		first    = flag.Uint64("first", 5_000, "first crash cycle")
		step     = flag.Uint64("step", 10_000, "cycles between crash points")
		ops      = flag.Int("ops", 400, "operations per thread")
		threads  = flag.Int("threads", 4, "threads/cores")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent crash points per campaign (1 = serial; reports are identical either way)")
		quiet    = flag.Bool("quiet", false, "suppress per-campaign detail; print only the summary and failures")
		traceOut = flag.String("trace-out", "", "trace ONE crash (at -first, single -workload/-scheme) as JSON lines to this file instead of sweeping")
	)
	flag.Parse()

	if *traceOut != "" {
		if *wl == "" || *scheme == "" {
			log.Fatal("-trace-out needs explicit -workload and -scheme")
		}
		s, err := bbb.ParseScheme(*scheme)
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		o := bbb.Options{Threads: *threads, OpsPerThread: *ops, L1Size: 1024, L2Size: 4096}
		res, err := bbb.CrashTraced(*wl, s, o, bbb.Cycle(*first), f)
		if err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("traced crash of %s/%s at cycle %d to %s\n", *wl, s, *first, *traceOut)
		fmt.Println(res.DurabilitySummary())
		fmt.Printf("resolved stores     %d (crash-drain resolutions included)\n", res.Counters.Get("persist.resolved_stores"))
		fmt.Printf("unresolved stores   %d (visible but never durable: lost at the crash)\n", res.Counters.Get("persist.unresolved_stores"))
		return
	}

	type cell struct {
		scheme     bbb.Scheme
		noBarriers bool
	}
	var cells []cell
	if *scheme == "" {
		cells = []cell{
			{bbb.SchemePMEM, false}, // Figure 3: barriers present
			{bbb.SchemePMEM, true},  // Figure 2: the bug
			{bbb.SchemeEADR, true},
			{bbb.SchemeBBB, true}, // the paper's claim: no barriers needed
			{bbb.SchemeBBBProc, true},
			{bbb.SchemeBEP, false}, // epoch barriers keep a prefix durable
			{bbb.SchemeBEP, true},  // ...but same-epoch coalescing reorders
			{bbb.SchemeNVCache, true},
		}
	} else {
		s, err := bbb.ParseScheme(*scheme)
		if err != nil {
			log.Fatal(err)
		}
		cells = []cell{{s, false}, {s, true}}
	}
	workloads := []string{"linkedlist"}
	if *wl != "" {
		workloads = []string{*wl}
	}

	if !*quiet {
		fmt.Printf("crash-injection campaign: %d points from cycle %d, step %d\n\n", *points, *first, *step)
	}
	campaigns, unexpected := 0, 0
	for _, w := range workloads {
		for _, c := range cells {
			o := bbb.Options{
				Threads:      *threads,
				OpsPerThread: *ops,
				NoBarriers:   c.noBarriers,
				Parallelism:  *parallel,
				// Small caches reorder persists aggressively, making the
				// PMEM/no-barrier bug easy to expose.
				L1Size: 1024,
				L2Size: 4096,
			}
			rep, err := bbb.CrashCampaign(w, c.scheme, o, *points, bbb.Cycle(*first), bbb.Cycle(*step))
			if err != nil {
				log.Fatal(err)
			}
			campaigns++
			broken := rep.Inconsistent > 0 && bbb.GuaranteesConsistency(c.scheme, !c.noBarriers)
			if broken {
				unexpected++
			}
			if !*quiet {
				fmt.Println(rep.String())
				if o2, failed := rep.FirstFailure(); failed {
					fmt.Printf("    first failure @%d: %v\n", o2.CrashCycle, o2.Err)
				}
			}
			if broken {
				o2, _ := rep.FirstFailure()
				fmt.Printf("FAIL: %s/%s guarantees consistency but %d crash point(s) were inconsistent (first @%d: %v)\n",
					w, c.scheme, rep.Inconsistent, o2.CrashCycle, o2.Err)
			}
		}
		if !*quiet {
			fmt.Println()
		}
	}
	if unexpected > 0 {
		fmt.Printf("FAIL: %d of %d campaigns broke a consistency guarantee\n", unexpected, campaigns)
		os.Exit(1)
	}
	if *quiet {
		fmt.Printf("ok: %d campaigns; every consistency-guaranteeing scheme recovered at every crash point\n", campaigns)
	} else {
		fmt.Println("expected: the pmem/NO-barriers and bep/NO-barriers rows are inconsistent")
		fmt.Println("(the Figure 2 bug, and its epoch-coalescing variant in traditional volatile")
		fmt.Println("persist buffers); BBB recovers at every crash point with zero barriers.")
	}
}
