// Command bbbmc model-checks crash images: where bbbcrash validates the
// single deterministic flush-on-fail image per crash point, bbbmc
// enumerates EVERY durable state a power failure could legally leave
// behind under the scheme's persist-ordering rules (any fence-respecting
// cache subset for PMEM, epoch-prefix-plus-frontier-reorder for BEP, the
// one battery-drained image for eADR/BBB) and runs the recovery checker
// against each. Violations come with a minimized, replayable witness.
//
// Usage:
//
//	bbbmc                                   # the acceptance matrix (gated)
//	bbbmc -workload hashmap -scheme pmem -nobarriers -witness-out w.json
//	bbbmc -repro w.json                     # replay a saved witness
//
// The default matrix exits non-zero unless the paper's claims hold over
// the whole reachable space: battery-complete schemes expose exactly one
// image per crash point with zero violations, barriered PMEM is clean
// across its reachable set, and barrier-free PMEM yields a violating
// image whose minimized witness reproduces in-process.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"bbb"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bbbmc: ")
	var (
		wl         = flag.String("workload", "", "workload to model-check (default: the acceptance matrix)")
		scheme     = flag.String("scheme", "", "scheme to model-check (required with -workload)")
		noBarriers = flag.Bool("nobarriers", false, "omit persist barriers (the Figure 2 variant)")
		points     = flag.Int("points", 6, "number of crash points")
		first      = flag.Uint64("first", 4_000, "first crash cycle")
		step       = flag.Uint64("step", 8_000, "cycles between crash points")
		ops        = flag.Int("ops", 150, "operations per thread")
		threads    = flag.Int("threads", 2, "threads/cores")
		parallel   = flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent crash points per campaign (1 = serial; reports are identical either way)")
		exhaustive = flag.Int("exhaustive", 0, "groups up to this many pending writes enumerate all 2^n subsets (0 = default 10)")
		maxFlips   = flag.Int("maxflips", 0, "larger groups enumerate subsets within this many writes of either extreme (0 = default 2)")
		maxImages  = flag.Int("maximages", 0, "cap on survival sets per crash point, excess counted not silent (0 = default 4096)")
		repro      = flag.String("repro", "", "replay a witness file and exit (0 = reproduced)")
		witnessOut = flag.String("witness-out", "", "write the campaign's first minimized witness to this file")
	)
	flag.Parse()

	if *repro != "" {
		os.Exit(replay(*repro))
	}

	opts := bbb.Options{
		Threads:      *threads,
		OpsPerThread: *ops,
		NoBarriers:   *noBarriers,
		Parallelism:  *parallel,
		// Small caches reorder persists aggressively, growing the pending
		// set the enumerator gets to flip.
		L1Size: 1024,
		L2Size: 4096,
	}
	bounds := bbb.MCBounds{ExhaustiveLimit: *exhaustive, MaxFlips: *maxFlips, MaxImages: *maxImages}
	run := func(w string, s bbb.Scheme, noBar bool) bbb.MCReport {
		o := opts
		o.NoBarriers = noBar
		rep, err := bbb.ModelCheck(w, s, o, *points, bbb.Cycle(*first), bbb.Cycle(*step), bounds)
		if err != nil {
			log.Fatal(err)
		}
		return rep
	}

	if *wl != "" {
		if *scheme == "" {
			log.Fatal("-workload needs -scheme (or drop both for the acceptance matrix)")
		}
		s, err := bbb.ParseScheme(*scheme)
		if err != nil {
			log.Fatal(err)
		}
		rep := run(*wl, s, *noBarriers)
		fmt.Println(rep.String())
		if wit := rep.FirstWitness(); wit != nil {
			fmt.Printf("    first witness @%d: %d survivor(s): %s\n", wit.CrashCycle, len(wit.Survivors), wit.Err)
			if *witnessOut != "" {
				data, err := wit.MarshalIndent()
				if err != nil {
					log.Fatal(err)
				}
				if err := os.WriteFile(*witnessOut, data, 0o644); err != nil {
					log.Fatal(err)
				}
				fmt.Printf("    witness written to %s (replay: bbbmc -repro %s)\n", *witnessOut, *witnessOut)
			}
		}
		if rep.TotalViolating > 0 {
			os.Exit(1)
		}
		return
	}

	os.Exit(matrix(run, *witnessOut))
}

// matrix runs the gated acceptance campaigns; it returns 1 when any of
// the paper's reachable-space claims fails to hold.
func matrix(run func(string, bbb.Scheme, bool) bbb.MCReport, witnessOut string) int {
	fail := 0
	bad := func(format string, args ...any) {
		fail = 1
		fmt.Printf("    FAIL: "+format+"\n", args...)
	}

	fmt.Println("crash-image model check: battery-complete schemes (Table IV workloads)")
	fmt.Println("claim: the reachable space is ONE image per crash point, zero violations")
	for _, w := range bbb.Workloads() {
		for _, s := range []bbb.Scheme{bbb.SchemeBBB, bbb.SchemeEADR} {
			rep := run(w, s, true) // no barriers: the battery replaces them
			fmt.Println(rep.String())
			if !rep.SingleImage() {
				bad("%s/%s: crash points with more than one reachable image", w, s)
			}
			if rep.TotalViolating != 0 {
				bad("%s/%s: %d violating image(s)", w, s, rep.TotalViolating)
			}
		}
	}

	fmt.Println()
	fmt.Println("crash-image model check: PMEM (Figures 2 and 3 over the whole reachable space)")
	withBar := run("linkedlist", bbb.SchemePMEM, false)
	fmt.Println(withBar.String())
	if withBar.TotalViolating != 0 {
		bad("pmem with barriers: %d violating image(s) — Figure 3 must be crash consistent", withBar.TotalViolating)
	}
	noBar := run("linkedlist", bbb.SchemePMEM, true)
	fmt.Println(noBar.String())
	if noBar.TotalViolating == 0 {
		bad("pmem without barriers: no violating image found — the Figure 2 bug should be reachable")
	} else if wit := noBar.FirstWitness(); wit == nil {
		bad("pmem without barriers: violations but no witness")
	} else {
		fmt.Printf("    first witness @%d: %d survivor(s): %s\n", wit.CrashCycle, len(wit.Survivors), wit.Err)
		out, err := bbb.ReplayWitness(wit)
		switch {
		case err != nil:
			bad("witness replay errored: %v", err)
		case !out.Reproduced:
			bad("witness did not reproduce: replay said %q", out.Err)
		default:
			fmt.Printf("    witness replayed: reproduced (%d pending writes at the crash)\n", out.Pending)
		}
		if witnessOut != "" {
			data, err := wit.MarshalIndent()
			if err != nil {
				log.Fatal(err)
			}
			if err := os.WriteFile(witnessOut, data, 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("    witness written to %s (replay: bbbmc -repro %s)\n", witnessOut, witnessOut)
		}
	}

	fmt.Println()
	fmt.Println("informational: BEP (volatile epoch-ordered buffers; epoch-prefix images)")
	fmt.Println(run("linkedlist", bbb.SchemeBEP, false).String())
	fmt.Println(run("linkedlist", bbb.SchemeBEP, true).String())

	fmt.Println()
	if fail == 0 {
		fmt.Println("ok: every reachable image respects the paper's claims — batteries collapse")
		fmt.Println("the crash-state space to one image; barriers make PMEM's space consistent.")
	} else {
		fmt.Println("FAIL: a reachable crash image contradicts the paper's claims (see above).")
	}
	return fail
}

// replay loads a witness and re-runs it in a fresh machine.
func replay(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	wit, err := bbb.ParseWitness(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replaying %s: %s/%s crash @%d, %d surviving write(s)\n",
		path, wit.Workload, wit.Scheme, wit.CrashCycle, len(wit.Survivors))
	out, err := bbb.ReplayWitness(wit)
	if err != nil {
		log.Fatal(err)
	}
	if !out.Reproduced {
		fmt.Printf("NOT reproduced: checker said %q, witness recorded %q\n", out.Err, wit.Err)
		return 1
	}
	fmt.Printf("reproduced: %s\n", out.Err)
	return 0
}
