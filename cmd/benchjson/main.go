// Command benchjson converts `go test -bench` output on stdin into JSON on
// stdout, for the benchmark-regression trail kept in BENCH_<n>.json files
// (see `make bench-json`). Counter names come through verbatim, so custom
// metrics like sim_stores/s and allocs/op are preserved alongside ns/op.
//
// With -ledger the recording is also appended to a run ledger
// (internal/obs) as a bench line: the results are the deterministic
// payload, the machine (hostname, CPU count, wall clock) goes in the host
// stamp, and successive recordings under the same -name accumulate in one
// run file — the provenance trail cmd/bbbregress comparisons sit next to.
//
// Usage:
//
//	go test -bench . -benchmem ./... | benchjson > BENCH_0.json
//	go test -bench . -benchmem ./... | benchjson -ledger .ledger -name nightly > BENCH_1.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"bbb/internal/obs"
)

type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type report struct {
	GOOS    string   `json:"goos,omitempty"`
	GOARCH  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []result `json:"results"`
}

func main() {
	var (
		ledgerDir = flag.String("ledger", "", "run-ledger directory to append the recording to (see internal/obs)")
		name      = flag.String("name", "bench", "run name for the ledger recording; same name = same run file")
	)
	flag.Parse()

	var rep report
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line); ok {
				rep.Results = append(rep.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *ledgerDir != "" {
		if err := appendToLedger(*ledgerDir, *name, rep); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
}

// appendToLedger records the parsed results as a bench line in the run
// ledger. The results slice is the deterministic payload; goos/cpu and the
// wall clock — machine facts — ride in the host stamp, mirroring how the
// campaign driver splits its lines.
func appendToLedger(dir, name string, rep report) error {
	ledger, err := obs.Open(dir)
	if err != nil {
		return err
	}
	runID, err := obs.RunID("benchjson", name)
	if err != nil {
		return err
	}
	seqBase := 0
	if prior, err := ledger.ReadIfExists(runID); err != nil {
		return err
	} else if prior != nil {
		if err := ledger.Repair(prior); err != nil {
			return err
		}
		seqBase = len(prior.Lines)
	}
	w, err := ledger.Append(runID, seqBase)
	if err != nil {
		return err
	}
	host, _ := os.Hostname()
	det := struct {
		Name    string   `json:"name"`
		Results []result `json:"results"`
	}{name, rep.Results}
	if err := w.Write(obs.KindBench, det, &obs.HostInfo{
		Hostname: host,
		GOOS:     runtime.GOOS,
		GOARCH:   runtime.GOARCH,
		CPUs:     runtime.NumCPU(),
		UnixNS:   time.Now().UnixNano(),
	}); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// parseBench decodes one result line: a name, an iteration count, then
// value/unit pairs. The trailing -GOMAXPROCS suffix is stripped from the
// name so files diff cleanly across machines.
func parseBench(line string) (result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	r := result{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		r.Metrics[f[i+1]] = v
	}
	return r, true
}
