# Correctness gates for the BBB simulator; see docs/ARCHITECTURE.md §8.

GO ?= go

.PHONY: all build test vet race invariant fuzz-short check

all: check

build:
	$(GO) build ./...

# Tier-1: the seed gate.
test:
	$(GO) test ./...

# Static analysis: go vet plus the project's bbbvet suite
# (locklint, detlint, statlint, cyclelint, persistlint).
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/bbbvet ./...

# Race detector across the full suite (the workload runners are the only
# multi-goroutine code; the seed baseline is race-clean).
race:
	$(GO) test -race ./...

# Step-wise runtime invariant harnesses (re-check the machine after every
# engine event) plus the race detector over the internal packages.
invariant:
	$(GO) test -race -tags invariant ./internal/...

# A bounded pass over every fuzz target.
fuzz-short:
	$(GO) test -run=^$$ -fuzz=FuzzCacheOps -fuzztime=10s ./internal/cache
	$(GO) test -run=^$$ -fuzz=FuzzCrashPoints -fuzztime=10s ./internal/workload

# Tier-1.5: everything above.
check: build test vet race invariant
