# Correctness gates for the BBB simulator; see docs/ARCHITECTURE.md §8.

GO ?= go

.PHONY: all build test vet race invariant fuzz-short mc-short check bench-json

all: check

build:
	$(GO) build ./...

# Tier-1: the seed gate.
test:
	$(GO) test ./...

# Static analysis: go vet plus the project's bbbvet suite
# (locklint, detlint, statlint, cyclelint, persistlint).
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/bbbvet ./...

# Race detector across the full suite (the workload runners are the only
# multi-goroutine code; the seed baseline is race-clean).
race:
	$(GO) test -race ./...

# Step-wise runtime invariant harnesses (re-check the machine after every
# engine event) plus the race detector over the internal packages.
invariant:
	$(GO) test -race -tags invariant ./internal/...

# Perf trajectory: run the key benchmarks (simulator throughput and
# allocation pressure, Figure 7 wall-clock, raw event-kernel rate) and
# record them as the next BENCH_<n>.json. Non-gating; CI uploads the file
# as an artifact so regressions are visible across PRs.
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkSimulatorThroughput|BenchmarkFig7aExecutionTime|BenchmarkEngineKernel|BenchmarkCrashMCEnumerate' \
		-benchmem . ./internal/engine ./internal/crashmc \
		| $(GO) run ./cmd/benchjson > BENCH_$$(ls BENCH_*.json 2>/dev/null | wc -l).json
	@ls BENCH_*.json | tail -1

# A bounded pass over every fuzz target.
fuzz-short:
	$(GO) test -run=^$$ -fuzz=FuzzCacheOps -fuzztime=10s ./internal/cache
	$(GO) test -run=^$$ -fuzz=FuzzCrashPoints -fuzztime=10s ./internal/workload

# Crash-image model checking at short bounds: the bbbmc acceptance matrix
# (battery schemes single-image, PMEM Figures 2/3 over the whole reachable
# space) exits non-zero on any expectation failure.
mc-short:
	$(GO) run ./cmd/bbbmc -points 4

# Tier-1.5: everything above.
check: build test vet race invariant mc-short
