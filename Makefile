# Correctness gates for the BBB simulator; see docs/ARCHITECTURE.md §8.

GO ?= go

.PHONY: all build test vet race invariant fuzz-short mc-short litmus-short pressure-short kv-short trace-smoke ir-equiv campaign-short regress check bench-json bench-profile

all: check

build:
	$(GO) build ./...

# Tier-1: the seed gate.
test:
	$(GO) test ./...

# Static analysis: go vet plus the project's bbbvet suite
# (locklint, detlint, statlint, cyclelint, persistlint).
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/bbbvet ./...

# Race detector across the full suite (the workload runners are the only
# multi-goroutine code; the seed baseline is race-clean).
race:
	$(GO) test -race ./...

# Step-wise runtime invariant harnesses (re-check the machine after every
# engine event) plus the race detector over the internal packages.
invariant:
	$(GO) test -race -tags invariant ./internal/...

# Perf trajectory: run the key benchmarks (simulator throughput and
# allocation pressure, Figure 7 wall-clock, raw event-kernel rate) and
# record them as the next BENCH_<n>.json, also appending the recording to
# the .ledger run ledger for provenance (who ran it, where, when).
# Non-gating; CI uploads the files as artifacts and `make regress` judges
# the trajectory.
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkSimulatorThroughput|BenchmarkIRThroughput|BenchmarkIRInterpreter|BenchmarkFig7aExecutionTime|BenchmarkEngineKernel|BenchmarkCrashMCEnumerate|BenchmarkAxiomaticEnumerate|BenchmarkTraceOverhead|BenchmarkPressureLint|BenchmarkKVService|BenchmarkPDSQueue' \
		-benchmem . ./internal/engine ./internal/ir ./internal/crashmc ./internal/axiomatic ./internal/trace ./internal/vet/pressurelint ./internal/kvservice ./internal/pds \
		| $(GO) run ./cmd/benchjson -ledger .ledger -name bench-json > BENCH_$$(ls BENCH_*.json 2>/dev/null | wc -l).json
	@ls BENCH_*.json | tail -1

# Noise-aware benchmark regression gate: judge the newest BENCH_<n>.json
# against the older trail with median ± K·MADσ bands (internal/obs). Only
# metrics with a stable history can fail the gate; noisy ones are reported
# as suspects. The comparison is also appended to the .ledger run ledger.
regress:
	$(GO) run ./cmd/bbbregress -dir . -ledger .ledger

# Hot-path profiling: run the compiled-IR throughput benchmark under the CPU
# and allocation profilers (bbbsim's -cpuprofile/-memprofile flags do the
# same for arbitrary workload/scheme combinations). Inspect with
# `go tool pprof bbb.test cpu.out`.
bench-profile:
	$(GO) test -run '^$$' -bench 'BenchmarkIRThroughput' -benchmem \
		-cpuprofile cpu.out -memprofile mem.out .
	@echo "profiles: cpu.out mem.out (binary: bbb.test)"

# Observability smoke: drive the full cmd/bbbtrace pipeline end to end —
# record the same run twice (streams must be byte-identical), filter by
# kind (exercising the JSONL re-parse), replay durability provenance
# offline, and export to Perfetto JSON. See docs/ARCHITECTURE.md §11.
trace-smoke:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/bbbtrace record -workload hashmap -scheme bbb -ops 100 -o $$tmp/a.jsonl; \
	$(GO) run ./cmd/bbbtrace record -workload hashmap -scheme bbb -ops 100 -o $$tmp/b.jsonl >/dev/null; \
	cmp -s $$tmp/a.jsonl $$tmp/b.jsonl || { echo "trace-smoke: FAIL: same seed, different streams"; exit 1; }; \
	$(GO) run ./cmd/bbbtrace filter -i $$tmp/a.jsonl -kind pb-alloc -o $$tmp/alloc.jsonl 2>/dev/null; \
	test -s $$tmp/alloc.jsonl || { echo "trace-smoke: FAIL: no pb-alloc events under bbb"; exit 1; }; \
	$(GO) run ./cmd/bbbtrace summarize -i $$tmp/a.jsonl -scheme bbb | grep -q 'unresolved stores   0' \
		|| { echo "trace-smoke: FAIL: bbb left stores unresolved"; exit 1; }; \
	$(GO) run ./cmd/bbbtrace export -i $$tmp/a.jsonl -o $$tmp/a.json >/dev/null; \
	grep -q '"traceEvents"' $$tmp/a.json || { echo "trace-smoke: FAIL: export missing traceEvents"; exit 1; }; \
	echo "trace-smoke: ok"

# A bounded pass over every fuzz target.
fuzz-short:
	$(GO) test -run=^$$ -fuzz=FuzzCacheOps -fuzztime=10s ./internal/cache
	$(GO) test -run=^$$ -fuzz=FuzzCrashPoints -fuzztime=10s ./internal/workload

# Crash-image model checking at short bounds: the bbbmc acceptance matrix
# (battery schemes single-image, PMEM Figures 2/3 over the whole reachable
# space) exits non-zero on any expectation failure.
mc-short:
	$(GO) run ./cmd/bbbmc -points 4

# Pressure-bound soundness gate: replay every Table IV workload × scheme
# pair and check the observed buffer occupancy, runtime invariants and
# crashmc pending-line sets against pressurelint's static battery-bound
# certificates; also pins the checked-in golden (regenerate with
# `go test ./internal/vet/pressurelint/conform -run Golden -update`).
# Exits non-zero with a minimized witness on any exceedance.
pressure-short:
	$(GO) test -count=1 ./internal/vet/pressurelint/conform

# Service-tier gate: the pds structures and the KV service must complete,
# recover and replay-check under the scheme matrix (their package tests),
# the tier must be persistlint- and detlint-clean with zero persistlint
# suppressions (statlint needs the whole program and runs under `vet`),
# and bbbkv must produce the scheme latency table end to end.
kv-short:
	$(GO) test -count=1 ./internal/pds ./internal/kvservice
	$(GO) run ./cmd/bbbvet -only persistlint ./internal/pds ./internal/kvservice
	$(GO) run ./cmd/bbbvet -only detlint ./internal/pds ./internal/kvservice
	@if grep -rn 'bbbvet:ignore persistlint' internal/pds internal/kvservice; then \
		echo "kv-short: FAIL: persistlint suppression in the pds/kvservice tier"; exit 1; fi
	$(GO) run ./cmd/bbbkv -scheme pmem,bbb -clients 2 -ops 120 | grep -q '^kv ' \
		|| { echo "kv-short: FAIL: bbbkv produced no kv row"; exit 1; }
	@echo "kv-short: ok"

# Campaign resumability gate: run a tiny frontier campaign to completion,
# then the same campaign killed at half its points and resumed at a
# different worker count, and require the resumed report — frontier table,
# summary digest and all — to be byte-identical to the uninterrupted one
# (docs/ARCHITECTURE.md §15). The kill goes through -max-points, the same
# truncation an actual SIGKILL leaves behind: complete points on disk, the
# rest missing.
campaign-short:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	args="-campaign frontier -workload hashmap -ops 80 -threads 2 \
		-grid-entries 8,32 -grid-thresholds 0.5,0.75 -budgets-mm3 1,20"; \
	$(GO) run ./cmd/bbbsim $$args -ledger $$tmp/full -parallel 2 > $$tmp/full.txt 2>/dev/null; \
	$(GO) run ./cmd/bbbsim $$args -ledger $$tmp/resumed -parallel 3 -max-points 2 > /dev/null 2>&1; \
	$(GO) run ./cmd/bbbsim $$args -ledger $$tmp/resumed -parallel 1 > $$tmp/resumed.txt 2>/dev/null; \
	cmp $$tmp/full.txt $$tmp/resumed.txt \
		|| { echo "campaign-short: FAIL: resumed campaign differs from uninterrupted run"; exit 1; }; \
	grep -q 'summary sha256' $$tmp/resumed.txt \
		|| { echo "campaign-short: FAIL: no summary digest in the report"; exit 1; }; \
	echo "campaign-short: ok"

# Px86-TSO conformance at short bounds: for every litmus test × scheme,
# the crashmc-reachable outcome set must sit inside the axiomatic allowed
# set, with the battery schemes collapsed to a single image per crash
# point. Exits non-zero with a minimized witness on any divergence.
litmus-short:
	$(GO) run ./cmd/bbblitmus conform -points 6

# Compiled-IR equivalence gate: the interpreter path must produce Results
# byte-identical to the goroutine drivers across the full workload × scheme
# × seed matrix (including crash-at-cycle images and parallel fan-out), and
# every compiled twin's machine-op trace must match its cpu.Env twin.
ir-equiv:
	$(GO) test -count=1 -run 'TestIR' . ./internal/workload

# Tier-1.5: everything above.
check: build test vet race invariant mc-short litmus-short pressure-short kv-short trace-smoke campaign-short ir-equiv regress
